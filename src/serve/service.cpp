#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace aero::serve {

/// Global-registry counter per terminal Outcome, same order as the
/// Outcome enum. Names live in obs/metric_names.hpp.
InferenceService::Metrics InferenceService::resolve_metrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    Metrics m;
    m.submitted = &reg.counter("aero_serve_submitted_total",
                               "requests accepted by submit()");
    m.outcome[static_cast<int>(Outcome::kOk)] =
        &reg.counter("aero_serve_ok_total", "conditional samples delivered");
    m.outcome[static_cast<int>(Outcome::kDegraded)] = &reg.counter(
        "aero_serve_degraded_total", "unconditional fallbacks delivered");
    m.outcome[static_cast<int>(Outcome::kShed)] =
        &reg.counter("aero_serve_shed_total", "requests shed at admission");
    m.outcome[static_cast<int>(Outcome::kInvalid)] = &reg.counter(
        "aero_serve_invalid_total", "requests rejected by validation");
    m.outcome[static_cast<int>(Outcome::kTimeout)] = &reg.counter(
        "aero_serve_timeout_total", "requests past their deadline");
    m.outcome[static_cast<int>(Outcome::kFailed)] = &reg.counter(
        "aero_serve_failed_total", "requests that exhausted every attempt");
    m.retries = &reg.counter("aero_serve_retries_total",
                             "generation attempts beyond the first");
    m.cancelled =
        &reg.counter("aero_serve_cancelled_midrun_total",
                     "requests cancelled between denoising steps");
    m.rate_limited =
        &reg.counter("aero_overload_rate_limited_total",
                     "requests rejected by the per-client rate limiter");
    m.queue_depth = &reg.gauge("aero_serve_queue_depth",
                               "requests waiting in the admission queue");
    m.breaker_state =
        &reg.gauge("aero_serve_breaker_state",
                   "circuit breaker state (0 closed, 1 open, 2 half-open)");
    m.breaker_trips =
        &reg.gauge("aero_serve_breaker_trips", "transitions into Open");
    m.breaker_recoveries = &reg.gauge("aero_serve_breaker_recoveries",
                                      "HalfOpen -> Closed transitions");
    m.queue_ms = &reg.histogram("aero_serve_queue_ms",
                                "admission -> worker pickup, ms",
                                obs::default_ms_buckets());
    m.latency_ms = &reg.histogram("aero_serve_latency_ms",
                                  "admission -> terminal outcome, ms",
                                  obs::default_ms_buckets());
    return m;
}

InferenceService::InferenceService(
    const core::AeroDiffusionPipeline& pipeline, const ServiceConfig& config)
    : pipeline_(&pipeline),
      config_(config),
      breaker_(config.breaker),
      metrics_(resolve_metrics()),
      controller_(config.overload),
      limiter_(config.rate_limit) {
    // First service in the process arms the env-gated periodic metrics
    // dump (AERO_OBS_DUMP_MS); a no-op when the knob is unset.
    obs::maybe_start_periodic_dump();
    // Continuous step batching: one driver thread batches the sampling
    // loops of concurrent requests (serve/batcher.hpp). Only built when
    // live — otherwise workers keep the inline path untouched.
    if (step_batching_live(config_.batch)) {
        batcher_ = std::make_unique<StepBatcher>(
            pipeline.unet(), pipeline.noise_schedule(), config_.batch);
    }
    // Warm the process-wide kernel pool before any request arrives.
    // Every service worker dispatches its tensor kernels onto this one
    // shared pool (sized by AERO_THREADS, not by config_.workers), so
    // concurrent requests divide a fixed set of cores instead of each
    // spawning its own — the no-oversubscription policy of DESIGN.md §11.
    util::ThreadPool::instance();
    // workers_ is guarded by stop_mutex_; nothing can race the
    // constructor, but taking the lock keeps the contract uniform (and
    // the static analysis satisfied) at the cost of one uncontended
    // acquisition.
    const util::MutexLock lock(stop_mutex_);
    const int workers = std::max(1, config_.workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        // Large odd stride keeps per-worker seeds distinct; each worker
        // owns its Rng outright (the shared util::Rng is not
        // thread-safe, so it is never shared).
        const std::uint64_t worker_seed =
            config_.seed + 0x9e3779b97f4a7c15ull * (i + 1);
        workers_.emplace_back(&InferenceService::worker_loop, this,
                              worker_seed);
    }
}

InferenceService::~InferenceService() { stop(); }

std::future<RequestResult> InferenceService::submit(InferenceRequest request) {
    const Clock::time_point now = Clock::now();
    std::promise<RequestResult> promise;
    std::future<RequestResult> future = promise.get_future();

    {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.submitted;
    }
    metrics_.submitted->inc();

    // Validation rejects before any queueing or tensor math.
    RequestResult early;
    std::string message;
    const InvalidReason reason =
        validate_request(request, config_.limits, &message);
    if (reason != InvalidReason::kNone) {
        early.outcome = Outcome::kInvalid;
        early.invalid_reason = reason;
        early.message = message;
        record(early);
        promise.set_value(std::move(early));
        return future;
    }

    // Per-client token bucket: an over-quota client is answered
    // immediately (kShed) so its backlog cannot crowd out others.
    if (limiter_.enabled() && !request.options.client_id.empty() &&
        !limiter_.admit(request.options.client_id,
                        obs::default_clock().now_ns())) {
        {
            const util::MutexLock lock(stats_mutex_);
            ++stats_.rate_limited;
        }
        metrics_.rate_limited->inc();
        early.outcome = Outcome::kShed;
        early.message = "rate limited: client over per-client quota";
        record(early);
        promise.set_value(std::move(early));
        return future;
    }

    Job job;
    job.request = std::move(request);
    job.promise = std::move(promise);
    job.submitted_at = now;
    job.has_deadline = job.request.deadline_ms > 0.0;
    if (job.has_deadline) {
        job.deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          job.request.deadline_ms));
    }

    // A deadline that has already expired is a timeout, not a shed: the
    // caller's budget ran out before admission, and classifying it here
    // keeps the queue-wait accounting window honest (queue_ms stays 0
    // for a request that never sat in the queue).
    if (job.has_deadline && Clock::now() >= job.deadline) {
        early.outcome = Outcome::kTimeout;
        early.message = "deadline expired at admission";
        record(early);
        job.promise.set_value(std::move(early));
        return future;
    }

    // Degradation ladder: stamp the rung the current load index earns
    // this priority class. The top rung sheds at admission — the
    // cheapest possible answer under the heaviest load. poll() first:
    // arrivals keep the index decaying even when nothing completes
    // (a full-shed rung must not latch).
    controller_.poll();
    job.rung = controller_.rung_for(job.request.options.priority);
    if (job.rung == DegradeRung::kShed) {
        early.outcome = Outcome::kShed;
        early.rung = DegradeRung::kShed;
        early.message = "overload: degradation ladder shed";
        record(early);
        job.promise.set_value(std::move(early));
        return future;
    }

    bool enqueued = false;
    {
        const util::MutexLock lock(queue_mutex_);
        if (accepting_ && queued_locked() < config_.queue_capacity) {
            queues_[static_cast<int>(job.request.options.priority)]
                .push_back(std::move(job));
            enqueued = true;
            metrics_.queue_depth->set(
                static_cast<double>(queued_locked()));
        }
    }
    if (enqueued) {
        queue_cv_.notify_one();
        return future;
    }

    // Load shedding: a full queue answers immediately instead of letting
    // latency grow without bound.
    early.outcome = Outcome::kShed;
    early.rung = job.rung;
    early.message = "admission queue full or service stopped";
    record(early);
    job.promise.set_value(std::move(early));
    return future;
}

void InferenceService::stop() {
    // stop_mutex_ serialises concurrent stoppers (an explicit stop()
    // racing the destructor): exactly one caller runs the join/clear
    // phase, the other blocks until the workers are gone.
    const util::MutexLock stop_lock(stop_mutex_);
    {
        const util::MutexLock lock(queue_mutex_);
        accepting_ = false;
        stopping_ = true;
    }
    queue_cv_.notify_all();
    const bool drained = !workers_.empty();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
    // After the workers: no execute() caller can be blocked on the
    // batcher any more, so its driver drains immediately.
    if (batcher_) batcher_->shutdown();
    // Shutdown dump (AERO_OBS_DUMP=1): one Prometheus-text snapshot to
    // AERO_OBS_DUMP_PATH (stderr when unset) from whichever caller
    // actually drained the service; repeated stop() calls stay silent.
    if (drained && util::env_int("AERO_OBS_DUMP", 0) != 0) {
        obs::dump_text(util::env_string("AERO_OBS_DUMP_PATH", ""));
    }
}

ServiceStats InferenceService::stats() const {
    ServiceStats snapshot;
    {
        const util::MutexLock lock(stats_mutex_);
        snapshot = stats_;
    }
    snapshot.breaker_trips = breaker_.trips();
    snapshot.breaker_recoveries = breaker_.recoveries();
    return snapshot;
}

std::size_t InferenceService::queue_depth() const {
    const util::MutexLock lock(queue_mutex_);
    return queued_locked() + static_cast<std::size_t>(active_);
}

bool InferenceService::accepting() const {
    const util::MutexLock lock(queue_mutex_);
    return accepting_;
}

void InferenceService::wait_idle(Clock::time_point deadline, bool bounded) {
    std::unique_lock<util::Mutex> lock(queue_mutex_);
    const auto idle = [this] { return queued_locked() == 0 && active_ == 0; };
    if (bounded) {
        queue_cv_.wait_until(lock, deadline, idle);
    } else {
        queue_cv_.wait(lock, idle);
    }
}

InferenceService::DrainReport InferenceService::drain(double deadline_ms) {
    // Serialised with stop() and concurrent drains behind stop_mutex_,
    // so the shed/cancel phase classifies each pending request exactly
    // once.
    const util::MutexLock stop_lock(stop_mutex_);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               std::max(0.0, deadline_ms)));
    long long cancelled_before = 0;
    {
        const util::MutexLock lock(stats_mutex_);
        cancelled_before = stats_.cancelled_mid_run;
    }
    long long pending = 0;
    {
        const util::MutexLock lock(queue_mutex_);
        accepting_ = false;
        draining_ = true;
        pending = static_cast<long long>(queued_locked()) + active_;
    }
    DrainReport report;
    if (pending == 0) {
        const util::MutexLock lock(queue_mutex_);
        draining_ = false;
        return report;
    }

    // Phase 1: workers run normally until the deadline or the backlog
    // clears.
    wait_idle(deadline, /*bounded=*/true);

    // Phase 2: arm the drain deadline — in-flight requests cancel at
    // their next step boundary or before their first step — and shed
    // whatever is still queued. A job a worker races out of the queue
    // here resolves through the cancellation path instead; either way
    // it terminates exactly once.
    drain_deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    std::deque<Job> leftovers;
    {
        const util::MutexLock lock(queue_mutex_);
        for (std::deque<Job>& q : queues_) {
            for (Job& job : q) leftovers.push_back(std::move(job));
            q.clear();
        }
        metrics_.queue_depth->set(0.0);
    }
    const Clock::time_point shed_now = Clock::now();
    for (Job& job : leftovers) {
        RequestResult early;
        // A leftover whose own deadline has passed timed out, it was
        // not shed by the drain — the caller's budget expired first.
        // Both classes count as resolved-unrun in report.shed.
        if (job.has_deadline && shed_now >= job.deadline) {
            early.outcome = Outcome::kTimeout;
            early.message = "deadline expired while queued (drain)";
        } else {
            early.outcome = Outcome::kShed;
            early.message = "shed during drain";
        }
        early.rung = job.rung;
        early.latency_ms = std::chrono::duration<double, std::milli>(
                               shed_now - job.submitted_at)
                               .count();
        early.queue_ms = early.latency_ms;
        record(early);
        job.promise.set_value(std::move(early));
        ++report.shed;
    }
    queue_cv_.notify_all();

    // Phase 3: wait for the in-flight requests to resolve — bounded in
    // practice by one denoising step or one backoff sleep past the
    // deadline.
    wait_idle(deadline, /*bounded=*/false);
    {
        const util::MutexLock lock(queue_mutex_);
        draining_ = false;
    }
    long long cancelled_after = 0;
    {
        const util::MutexLock lock(stats_mutex_);
        cancelled_after = stats_.cancelled_mid_run;
    }
    report.cancelled = cancelled_after - cancelled_before;
    report.completed = pending - report.shed - report.cancelled;
    return report;
}

void InferenceService::record(const RequestResult& result) {
    {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.by_outcome[static_cast<int>(result.outcome)];
        ++stats_.by_rung[static_cast<int>(result.rung)];
        stats_.retries += result.retries;
        if (result.cancelled) ++stats_.cancelled_mid_run;
    }
    metrics_.outcome[static_cast<int>(result.outcome)]->inc();
    if (result.retries > 0) metrics_.retries->inc(result.retries);
    if (result.cancelled) metrics_.cancelled->inc();
}

void InferenceService::publish_breaker_metrics() {
    metrics_.breaker_state->set(static_cast<double>(
        static_cast<int>(breaker_.state())));
    metrics_.breaker_trips->set(static_cast<double>(breaker_.trips()));
    metrics_.breaker_recoveries->set(
        static_cast<double>(breaker_.recoveries()));
}

int InferenceService::pick_queue_locked(Clock::time_point now) const {
    const int interactive = static_cast<int>(Priority::kInteractive);
    const int batch = static_cast<int>(Priority::kBatch);
    if (queues_[batch].empty()) return interactive;
    if (queues_[interactive].empty()) return batch;
    // Both classes pending: interactive wins unless the batch head has
    // waited past the anti-starvation bound (bounded-wait contract).
    const double batch_wait_ms =
        std::chrono::duration<double, std::milli>(
            now - queues_[batch].front().submitted_at)
            .count();
    return batch_wait_ms >= config_.overload.batch_max_wait_ms ? batch
                                                               : interactive;
}

void InferenceService::worker_loop(std::uint64_t worker_seed) {
    util::Rng backoff_rng(worker_seed);
    util::FaultInjector* injector = config_.fault_injector;
    for (;;) {
        Job job;
        {
            std::unique_lock<util::Mutex> lock(queue_mutex_);
            // The AIMD limit gates pickup, not admission: queued work
            // waits (and may CoDel-drop) while active_ is at the limit.
            // A stop() drains unconditionally so shutdown never wedges
            // behind a depressed limit.
            queue_cv_.wait(lock, [this] {
                if (stopping_) return true;
                if (queued_locked() == 0) return false;
                return !controller_.enabled() ||
                       active_ < controller_.limit();
            });
            if (queued_locked() == 0) return;  // stopping_ and drained
            std::deque<Job>& queue = queues_[pick_queue_locked(Clock::now())];
            job = std::move(queue.front());
            queue.pop_front();
            ++active_;
            metrics_.queue_depth->set(static_cast<double>(queued_locked()));
        }

        // Deterministic overload drill: the "overload_spike" point feeds
        // the controller a synthetic latency spike at dequeue.
        if (injector && controller_.enabled() &&
            injector->should_fail("overload_spike")) {
            controller_.inject_spike();
        }

        // CoDel: a head that sat over the sojourn target for a full
        // interval is dropped (fast kShed) instead of served late. A
        // job whose own deadline has passed skips the verdict and
        // resolves kTimeout through process() as before.
        const double sojourn_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      job.submitted_at)
                .count();
        const bool expired =
            job.has_deadline && Clock::now() >= job.deadline;
        if (!expired && controller_.enabled() &&
            controller_.codel_drop(sojourn_ms)) {
            {
                const util::MutexLock lock(stats_mutex_);
                ++stats_.codel_dropped;
            }
            RequestResult dropped;
            dropped.outcome = Outcome::kShed;
            dropped.rung = job.rung;
            dropped.message = "overload: CoDel drop (queue sojourn over "
                              "target for a full interval)";
            dropped.queue_ms = sojourn_ms;
            dropped.latency_ms = sojourn_ms;
            record(dropped);
            job.promise.set_value(std::move(dropped));
            bool wake = false;
            {
                const util::MutexLock lock(queue_mutex_);
                --active_;
                wake = draining_ || controller_.enabled();
            }
            if (wake) queue_cv_.notify_all();
            continue;
        }
        // One Trace per request: spans opened anywhere below (pipeline
        // stages, sampler steps) attach to it, log lines carry its rid,
        // and the folded summary rides back on the result.
        const std::uint64_t rid = obs::next_request_id();
        RequestResult result;
        {
            obs::Trace trace(rid);
            // Exactly-once accounting even on an unexpected throw: a
            // request that dies mid-process must still resolve with a
            // typed outcome instead of leaking its promise (the books
            // would never balance again).
            try {
                result = process(job, backoff_rng);
            } catch (const std::exception& e) {
                result.outcome = Outcome::kFailed;
                result.message = std::string("internal error: ") + e.what();
            } catch (...) {
                result.outcome = Outcome::kFailed;
                result.message = "internal error: unknown exception";
            }
            if (result.latency_ms <= 0.0) {
                result.latency_ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - job.submitted_at)
                        .count();
            }
            result.spans = trace.summary();
        }
        result.request_id = rid;
        metrics_.queue_ms->observe(result.queue_ms);
        metrics_.latency_ms->observe(result.latency_ms);
        // Only latencies of requests that actually ran feed the AIMD
        // window; early classifications (timeouts, sheds) would teach
        // the controller that overload is fast.
        if (result.outcome == Outcome::kOk ||
            result.outcome == Outcome::kDegraded) {
            controller_.on_finish(result.latency_ms);
        }
        publish_breaker_metrics();
        record(result);
        job.promise.set_value(std::move(result));
        // The in-flight count drops only after the promise resolved, so
        // drain()'s idle wait implies every pending future is ready.
        // With overload control live, every finish may unblock a worker
        // parked on the limit gate, so those builds wake everyone.
        bool wake_all = false;
        {
            const util::MutexLock lock(queue_mutex_);
            --active_;
            wake_all = draining_ || controller_.enabled();
        }
        if (wake_all) queue_cv_.notify_all();
    }
}

bool InferenceService::backoff(int attempt, const Job& job,
                               util::Rng& rng) const {
    double delay = config_.backoff_base_ms *
                   static_cast<double>(1u << std::min(attempt - 1, 16));
    delay = std::min(delay, config_.backoff_max_ms);
    delay *= 0.5 + rng.uniform();  // jitter in [0.5, 1.5)
    const Clock::time_point wake =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(delay));
    if (job.has_deadline && wake >= job.deadline) return false;
    const long long drain_ns =
        drain_deadline_ns_.load(std::memory_order_relaxed);
    if (std::chrono::duration_cast<std::chrono::nanoseconds>(
            wake.time_since_epoch())
            .count() >= drain_ns) {
        return false;  // the sleep would outlive the drain deadline
    }
    std::this_thread::sleep_until(wake);
    return true;
}

bool InferenceService::cancel_due(const Job& job) const {
    const Clock::time_point now = Clock::now();
    if (job.has_deadline && now >= job.deadline) return true;
    const long long drain_ns =
        drain_deadline_ns_.load(std::memory_order_relaxed);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               now.time_since_epoch())
               .count() >= drain_ns;
}

RequestResult InferenceService::process(Job& job, util::Rng& backoff_rng) {
    RequestResult result;
    result.rung = job.rung;
    const Clock::time_point picked_up = Clock::now();
    result.queue_ms =
        std::chrono::duration<double, std::milli>(picked_up -
                                                  job.submitted_at)
            .count();
    const auto finish = [&](Outcome outcome, const std::string& message) {
        result.outcome = outcome;
        result.message = message;
        result.latency_ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - job.submitted_at)
                                .count();
        result.retries = std::max(0, result.attempts - 1);
        return result;
    };

    if (job.has_deadline && picked_up >= job.deadline) {
        // The deadline expired while the job sat queued, but the job
        // has been dequeued by now: account it through the same
        // cancellation bucket as a between-steps cancel, so the
        // dequeue -> cancel window never goes missing from
        // cancelled_mid_run.
        result.cancelled = true;
        return finish(Outcome::kTimeout, "deadline expired while queued");
    }

    const InferenceRequest& request = job.request;
    util::FaultInjector* injector = config_.fault_injector;

    for (int attempt = 1; attempt <= std::max(1, config_.max_attempts);
         ++attempt) {
        // Dequeue -> first-step window: the job deadline (or a service
        // drain) can expire after the pickup check above but before the
        // sampler's first cancellation poll. Resolve it here, once,
        // through the same cancelled-mid-run accounting as a
        // between-steps cancellation — never as a lost or
        // double-counted request.
        if (cancel_due(job)) {
            result.cancelled = true;
            return finish(Outcome::kTimeout,
                          "cancelled before the first denoising step");
        }
        result.attempts = attempt;
        const bool last_attempt = attempt >= std::max(1, config_.max_attempts);

        // Transient serve-side fault (scheduler hiccup, flaky I/O...):
        // nothing ran yet, so plain retry-with-backoff is the answer.
        if (injector && injector->should_fail("serve_transient")) {
            if (last_attempt) {
                return finish(Outcome::kFailed,
                              "transient fault persisted through retries");
            }
            if (!backoff(attempt, job, backoff_rng)) {
                return finish(Outcome::kTimeout,
                              "deadline expired during retry backoff");
            }
            continue;
        }

        // Ladder rung kUnconditional skips the condition encoder by
        // policy, without consulting (or perturbing) the breaker: an
        // overload fallback is not evidence about encoder health.
        const bool overload_unconditional =
            job.rung >= DegradeRung::kUnconditional;
        // Only the first attempt counts toward the Open-state cooldown:
        // open_cooldown is specified in distinct requests, not retries.
        bool holds_probe = false;
        const bool conditional =
            !overload_unconditional &&
            breaker_.allow_conditional(&holds_probe,
                                       /*count_cooldown=*/attempt == 1);
        // A probe holder owes the breaker exactly one verdict. Exits
        // that learn nothing about the encoder (cancellation, pipeline
        // rejection, non-finite sample) must free the slot or the
        // breaker wedges HalfOpen forever; RAII covers every
        // continue/return below. Disarmed before on_success/on_failure.
        struct ProbeRelease {
            CircuitBreaker* breaker;
            bool armed;
            ~ProbeRelease() {
                if (armed) breaker->on_probe_abandoned();
            }
        } probe{&breaker_, holds_probe};

        // Injected stall (GC pause, cold cache, noisy neighbour) inside
        // the attempt, after breaker admission: makes mid-run deadline
        // cancellation reachable deterministically in tests.
        if (injector && injector->should_fail("serve_slow")) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    config_.slow_fault_ms));
        }

        core::GenerateControl control;
        control.force_unconditional = !conditional;
        control.fault_injector = injector;
        // A half-open probe exists to test the real encoder path; a
        // condition-cache hit would skip exactly the thing being probed
        // and could report a broken encoder healthy.
        control.bypass_condition_cache = holds_probe;
        // Degradation knobs accumulate down the ladder: reduced steps
        // first, then also half resolution (generate() only; edit and
        // inpaint honour the step cap alone).
        if (job.rung >= DegradeRung::kReducedSteps) {
            control.max_steps = std::max(1, config_.overload.reduced_steps);
        }
        if (job.rung >= DegradeRung::kReducedResolution) {
            control.half_resolution = true;
        }
        // Polled between denoising steps: covers the job's own deadline
        // and a service-wide drain deadline (graceful replica restart /
        // simulated crash). With the batcher live the poll runs on its
        // driver thread; the job outlives the call (the worker blocks
        // inside the pipeline) and the predicate only reads immutable
        // job fields plus an atomic, so that is safe.
        control.should_cancel = [this, job_ptr = &job] {
            return cancel_due(*job_ptr);
        };
        // Hand the sampling loop to the continuous step batcher, which
        // packs concurrent requests into one UNet forward per denoising
        // step. Bitwise identical to the inline path (the batcher draws
        // from request_rng below in sequential order).
        if (batcher_) control.executor = batcher_.get();

        // Per-request determinism: the image depends on the request
        // seed and the attempt, not on which worker drew the job.
        util::Rng request_rng(request.seed +
                              0xd1b54a32d192ed03ull *
                                  static_cast<std::uint64_t>(attempt));
        image::Image image;
        switch (request.task) {
            case TaskKind::kGenerate:
                image = pipeline_->generate(request.reference,
                                            request.source_caption,
                                            request.target_caption,
                                            request_rng, -1, &control);
                break;
            case TaskKind::kEdit:
                image = pipeline_->generate_edit(
                    request.reference, request.source_caption,
                    request.target_caption, request.strength, request_rng,
                    -1, &control);
                break;
            case TaskKind::kInpaint:
                image = pipeline_->generate_inpaint(
                    request.reference, request.region,
                    request.source_caption, request.target_caption,
                    request_rng, -1, &control);
                break;
        }

        if (control.cancelled) {
            result.cancelled = true;
            return finish(Outcome::kTimeout,
                          "deadline hit; cancelled between denoising steps");
        }
        if (!control.error.empty()) {
            // Pipeline-level rejection: validation should have caught
            // this, so surface it as invalid rather than crash or loop.
            result.invalid_reason = InvalidReason::kBadReferenceImage;
            return finish(Outcome::kInvalid, control.error);
        }

        bool finite = !image.empty();
        for (const float v : image.data()) {
            if (!std::isfinite(v)) {
                finite = false;
                break;
            }
        }
        if (!finite) {
            // A non-finite or missing sample must never leave the
            // service; treat like a transient and retry on fresh noise.
            if (last_attempt) {
                return finish(Outcome::kFailed,
                              "sampler produced no finite image");
            }
            if (!backoff(attempt, job, backoff_rng)) {
                return finish(Outcome::kTimeout,
                              "deadline expired during retry backoff");
            }
            continue;
        }

        if (!conditional) {
            // Unconditional by design: overload ladder or open breaker.
            result.image = std::move(image);
            return finish(Outcome::kDegraded,
                          overload_unconditional
                              ? "overload: unconditional fallback"
                              : "circuit breaker open; served unconditional");
        }
        if (control.degraded) {
            // Conditional path failed (injected fault or non-finite
            // encoding); the image in hand is the unconditional
            // fallback. Tell the breaker, then retry for a conditional
            // sample while attempts remain.
            probe.armed = false;
            breaker_.on_failure(holds_probe);
            if (last_attempt || !backoff(attempt, job, backoff_rng)) {
                result.image = std::move(image);
                return finish(Outcome::kDegraded,
                              "condition encoder failed; served "
                              "unconditional fallback");
            }
            continue;
        }
        probe.armed = false;
        breaker_.on_success(holds_probe);
        result.condition_cached = control.condition_cached;
        result.image = std::move(image);
        return finish(Outcome::kOk, "");
    }
    return finish(Outcome::kFailed, "attempts exhausted");
}

}  // namespace aero::serve
