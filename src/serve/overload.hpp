#pragma once
// Adaptive overload control for the serve stack (DESIGN.md §14): an
// AdmissionController that turns hard failure under saturation into
// measured quality degradation. Three cooperating mechanisms, all
// driven from one injectable obs::Clock so tests pin them with a
// ManualClock:
//
//   * AIMD concurrency limit. The controller watches the p99 of
//     completed-request latencies (window quantile) and, when obs is
//     on, the p99 of the `aero_diffusion_step_ms` histogram the sampler
//     already exports — whichever signal overshoots its target more.
//     Overshoot applies one multiplicative decrease per interval
//     (limit *= decrease_factor); on-target windows earn an additive
//     increase (+additive_increase), clamped to [min_limit, max_limit].
//     Workers gate on the limit, so effective concurrency follows
//     measured latency instead of a static thread count.
//
//   * CoDel queue discipline. Each dequeue reports the head-of-queue
//     sojourn time; once sojourn stays above codel_target_ms for a full
//     codel_interval_ms, the head is dropped (resolved kShed), and
//     successive drops accelerate by the CoDel sqrt law until sojourn
//     dips back under target. Standing queues convert to fast failures
//     instead of serving every request late.
//
//   * Degradation ladder. An EWMA load index over max(latency ratio,
//     sojourn ratio) selects the base rung: full -> reduced DDIM steps
//     -> reduced resolution -> unconditional fallback -> shed. Batch
//     requests read the ladder one bias step worse than interactive, so
//     quality is taken from bulk traffic first. Every base-rung
//     transition increments its `aero_overload_rung_*_total` counter
//     (the overload-accounting lint rule pins call sites to that
//     contract).
//
// Gating: a controller is live only when its config enables it AND the
// process-wide AERO_OVERLOAD switch (default on, `0` disables) is set —
// mirroring AERO_OBS. With either off, every query degenerates to the
// identity (limit = max, rung = kFull, no drops) and serving output is
// bitwise identical to a build without this subsystem.

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::serve {

/// Process-wide overload switch, initialised once from AERO_OVERLOAD
/// (0 disables; anything else, or unset, enables).
bool overload_enabled();
/// Test/bench hook; takes effect immediately on all threads.
void set_overload_enabled(bool on);

struct OverloadConfig {
    /// Master switch for this controller; ANDed with overload_enabled().
    /// Off by default so existing services are untouched.
    bool enabled = false;

    // -- AIMD concurrency limit --
    /// End-to-end latency target; window p99 above it is overload.
    double latency_target_ms = 50.0;
    /// Per-denoising-step latency target fed by the
    /// aero_diffusion_step_ms histogram; <= 0 disables the step signal
    /// (the request-latency window still drives the controller).
    double step_target_ms = 0.0;
    int min_limit = 1;
    int max_limit = 64;
    double additive_increase = 1.0;
    double decrease_factor = 0.7;  ///< multiplicative, once per interval
    /// Minimum spacing between multiplicative decreases; also the
    /// arrival-path (poll) re-evaluation cadence.
    double interval_ms = 10.0;
    int window = 32;  ///< completed-request latencies per evaluation

    // -- CoDel queue discipline --
    double codel_target_ms = 20.0;    ///< acceptable head sojourn
    double codel_interval_ms = 100.0; ///< sustained-overage window

    // -- degradation ladder --
    /// EWMA weight of the newest load sample in the load index.
    double load_smoothing = 0.3;
    /// Ascending load-index thresholds for entering rung 1..4; index i
    /// is the boundary into DegradeRung(i + 1).
    double rung_thresholds[kNumDegradeRungs - 1] = {1.0, 1.5, 2.0, 3.0};
    /// DDIM step cap applied at kReducedSteps and every rung below.
    int reduced_steps = 4;
    /// Batch requests read the ladder at load_index + batch_bias.
    double batch_bias = 0.5;

    // -- priority queueing --
    /// A batch head-of-queue older than this wins the dequeue even with
    /// interactive work pending (anti-starvation bound).
    double batch_max_wait_ms = 200.0;

    // -- fault injection --
    /// Synthetic latency (in units of latency_target_ms) the
    /// "overload_spike" fault point feeds the controller.
    double spike_factor = 8.0;
};

class AdmissionController {
public:
    /// `clock` defaults to obs::default_clock(); tests pass a
    /// ManualClock for deterministic AIMD/CoDel behaviour. The caller
    /// keeps ownership and must outlive the controller.
    explicit AdmissionController(const OverloadConfig& config,
                                 const obs::Clock* clock = nullptr);

    /// Live = config.enabled && overload_enabled() at construction.
    bool enabled() const { return enabled_; }

    /// Current AIMD concurrency limit (max_limit when not live).
    /// Lock-free: safe to read inside a queue-mutex predicate.
    int limit() const { return limit_.load(std::memory_order_relaxed); }

    /// Feed one completed-request latency into the AIMD window and run
    /// an evaluation (decreases stay spaced by interval_ms).
    void on_finish(double latency_ms) AERO_EXCLUDES(mutex_);

    /// Arrival-path hook (submit() calls it before reading the rung):
    /// re-evaluates once per codel_interval_ms even when nothing
    /// completed in it. Without this a full-shed rung would latch
    /// forever — shed admissions produce no completions to re-evaluate
    /// on. An evaluation with no fresh completions carries no latency
    /// evidence, so the load index decays toward the live queue signal
    /// and the ladder steps back down.
    void poll() AERO_EXCLUDES(mutex_);

    /// "overload_spike" fault point: a synthetic latency observation of
    /// spike_factor * latency_target_ms plus an immediate evaluation,
    /// deterministically driving a decrease and ladder escalation.
    void inject_spike() AERO_EXCLUDES(mutex_);

    /// CoDel verdict for a dequeued head with the given queue sojourn:
    /// true = drop it (resolve kShed). Also feeds the sojourn ratio
    /// into the load index.
    bool codel_drop(double sojourn_ms) AERO_EXCLUDES(mutex_);

    /// Smoothed load index (1.0 = exactly at target).
    double load_index() const {
        return load_index_.load(std::memory_order_relaxed);
    }

    /// Ladder rung for a request of `priority` right now: the base rung
    /// from the load index, read one bias step worse for batch.
    DegradeRung rung_for(Priority priority) const;

    /// Latest p99 estimate of the aero_diffusion_step_ms histogram
    /// delta (-1 before any step signal was ingested or when disabled).
    double step_p99_ms() const {
        return step_p99_ms_.load(std::memory_order_relaxed);
    }

    long long codel_drops() const {
        return codel_drops_.load(std::memory_order_relaxed);
    }
    long long decreases() const {
        return decreases_.load(std::memory_order_relaxed);
    }

    const OverloadConfig& config() const { return config_; }

private:
    /// Cached handles into the global registry (obs/metric_names.hpp):
    /// limit/load/rung gauges, a counter per ladder rung transition,
    /// plus the CoDel-drop and AIMD-decrease counters.
    struct Metrics {
        obs::Gauge* limit = nullptr;
        obs::Gauge* load_index = nullptr;
        obs::Gauge* rung = nullptr;
        obs::Counter* rung_transition[kNumDegradeRungs] = {};
        obs::Counter* codel_dropped = nullptr;
        obs::Counter* decreases = nullptr;
    };
    static Metrics resolve_metrics();

    void evaluate_locked(std::int64_t now_ns) AERO_REQUIRES(mutex_);
    /// Sole writer of rung_; counts the transition (overload-accounting
    /// lint contract) and refreshes the rung gauge.
    void set_rung_locked(DegradeRung rung) AERO_REQUIRES(mutex_);
    /// p99 delta of the step-latency histogram since the last call
    /// (-1 when obs is off, the signal is disabled, or nothing new).
    double ingest_step_p99_locked() AERO_REQUIRES(mutex_);

    OverloadConfig config_;
    const obs::Clock* clock_;
    bool enabled_ = false;
    Metrics metrics_;
    obs::Histogram* step_histogram_ = nullptr;

    // Lock-free mirrors for hot-path readers.
    std::atomic<int> limit_;
    std::atomic<double> load_index_{0.0};
    std::atomic<int> rung_{static_cast<int>(DegradeRung::kFull)};
    std::atomic<double> step_p99_ms_{-1.0};
    std::atomic<long long> codel_drops_{0};
    std::atomic<long long> decreases_{0};

    mutable util::Mutex mutex_;
    double limit_exact_ AERO_GUARDED_BY(mutex_);  ///< fractional limit
    std::vector<double> window_ AERO_GUARDED_BY(mutex_);
    std::size_t window_next_ AERO_GUARDED_BY(mutex_) = 0;
    std::size_t window_count_ AERO_GUARDED_BY(mutex_) = 0;
    /// Completions since the last evaluation; a poll()-driven
    /// evaluation with none treats the stale window as no evidence.
    std::size_t finishes_since_eval_ AERO_GUARDED_BY(mutex_) = 0;
    std::int64_t last_eval_ns_ AERO_GUARDED_BY(mutex_) = 0;
    std::int64_t last_decrease_ns_ AERO_GUARDED_BY(mutex_) = 0;
    double max_sojourn_ms_ AERO_GUARDED_BY(mutex_) = 0.0;
    /// Step-histogram snapshot consumed so far (delta-p99 estimation).
    long long step_seen_count_ AERO_GUARDED_BY(mutex_) = 0;
    std::vector<long long> step_seen_cumulative_ AERO_GUARDED_BY(mutex_);
    // CoDel state.
    std::int64_t codel_first_over_ns_ AERO_GUARDED_BY(mutex_) = 0;
    std::int64_t codel_drop_next_ns_ AERO_GUARDED_BY(mutex_) = 0;
    int codel_drop_count_ AERO_GUARDED_BY(mutex_) = 0;
};

}  // namespace aero::serve
