#include "serve/breaker.hpp"

namespace aero::serve {

bool CircuitBreaker::allow_conditional(bool* holds_probe,
                                       bool count_cooldown) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (holds_probe) *holds_probe = false;
    switch (state_) {
        case State::kClosed: return true;
        case State::kOpen:
            if (count_cooldown && --cooldown_remaining_ <= 0) {
                state_ = State::kHalfOpen;
                probe_in_flight_ = true;
                if (holds_probe) *holds_probe = true;
                return true;  // this caller carries the probe
            }
            return false;
        case State::kHalfOpen:
            if (!probe_in_flight_) {
                probe_in_flight_ = true;
                if (holds_probe) *holds_probe = true;
                return true;
            }
            return false;  // one probe at a time; others stay degraded
    }
    return true;
}

void CircuitBreaker::on_success() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        state_ = State::kClosed;
        probe_in_flight_ = false;
        ++recoveries_;
    }
    consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        state_ = State::kOpen;
        probe_in_flight_ = false;
        cooldown_remaining_ = config_.open_cooldown;
        consecutive_failures_ = 0;
        ++trips_;
        return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        cooldown_remaining_ = config_.open_cooldown;
        consecutive_failures_ = 0;
        ++trips_;
    }
}

void CircuitBreaker::on_probe_abandoned() {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Only the probe holder calls this; if a racing on_success() /
    // on_failure() already moved the breaker out of HalfOpen the slot
    // was released there, so this is a no-op.
    if (state_ == State::kHalfOpen) probe_in_flight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

int CircuitBreaker::trips() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return trips_;
}

int CircuitBreaker::recoveries() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return recoveries_;
}

const char* breaker_state_name(CircuitBreaker::State state) {
    switch (state) {
        case CircuitBreaker::State::kClosed: return "closed";
        case CircuitBreaker::State::kOpen: return "open";
        case CircuitBreaker::State::kHalfOpen: return "half-open";
    }
    return "?";
}

}  // namespace aero::serve
