#include "serve/breaker.hpp"

namespace aero::serve {

bool CircuitBreaker::allow_conditional(bool* holds_probe,
                                       bool count_cooldown) {
    const util::MutexLock lock(mutex_);
    if (holds_probe) *holds_probe = false;
    switch (state_) {
        case State::kClosed: return true;
        case State::kOpen:
            if (count_cooldown && --cooldown_remaining_ <= 0) {
                state_ = State::kHalfOpen;
                probe_in_flight_ = true;
                if (holds_probe) *holds_probe = true;
                return true;  // this caller carries the probe
            }
            return false;
        case State::kHalfOpen:
            if (!probe_in_flight_) {
                probe_in_flight_ = true;
                if (holds_probe) *holds_probe = true;
                return true;
            }
            return false;  // one probe at a time; others stay degraded
    }
    return true;
}

void CircuitBreaker::trip_open() {
    state_ = State::kOpen;
    probe_in_flight_ = false;
    cooldown_remaining_ = config_.open_cooldown;
    consecutive_failures_ = 0;
    ++trips_;
}

void CircuitBreaker::on_success(bool held_probe) {
    const util::MutexLock lock(mutex_);
    if (state_ == State::kHalfOpen && held_probe) {
        state_ = State::kClosed;
        probe_in_flight_ = false;
        consecutive_failures_ = 0;
        ++recoveries_;
        return;
    }
    if (state_ == State::kClosed) consecutive_failures_ = 0;
    // Otherwise the verdict is stale: this attempt was admitted before
    // the breaker tripped, and the sampling-speed encoder state it saw
    // says nothing about recovery now. Leave the probe to decide.
}

void CircuitBreaker::on_failure(bool held_probe) {
    const util::MutexLock lock(mutex_);
    if (state_ == State::kHalfOpen && held_probe) {
        trip_open();  // probe failed: re-open for another cooldown
        return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
        trip_open();
    }
    // Open / stale-HalfOpen failures are ignored: the breaker already
    // knows the encoder is bad, and resetting the cooldown on every
    // straggler would postpone the probe indefinitely under load.
}

void CircuitBreaker::on_probe_abandoned() {
    const util::MutexLock lock(mutex_);
    // Only the probe holder calls this, and only the probe holder can
    // transition out of HalfOpen, so HalfOpen here means the slot is
    // still ours to release.
    if (state_ == State::kHalfOpen) probe_in_flight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
    const util::MutexLock lock(mutex_);
    return state_;
}

int CircuitBreaker::trips() const {
    const util::MutexLock lock(mutex_);
    return trips_;
}

int CircuitBreaker::recoveries() const {
    const util::MutexLock lock(mutex_);
    return recoveries_;
}

const char* breaker_state_name(CircuitBreaker::State state) {
    switch (state) {
        case CircuitBreaker::State::kClosed: return "closed";
        case CircuitBreaker::State::kOpen: return "open";
        case CircuitBreaker::State::kHalfOpen: return "half-open";
    }
    return "?";
}

}  // namespace aero::serve
