#include "serve/breaker.hpp"

namespace aero::serve {

bool CircuitBreaker::allow_conditional() {
    const std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
        case State::kClosed: return true;
        case State::kOpen:
            if (--cooldown_remaining_ <= 0) {
                state_ = State::kHalfOpen;
                probe_in_flight_ = true;
                return true;  // this caller carries the probe
            }
            return false;
        case State::kHalfOpen:
            if (!probe_in_flight_) {
                probe_in_flight_ = true;
                return true;
            }
            return false;  // one probe at a time; others stay degraded
    }
    return true;
}

void CircuitBreaker::on_success() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        state_ = State::kClosed;
        probe_in_flight_ = false;
        ++recoveries_;
    }
    consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        state_ = State::kOpen;
        probe_in_flight_ = false;
        cooldown_remaining_ = config_.open_cooldown;
        consecutive_failures_ = 0;
        ++trips_;
        return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        cooldown_remaining_ = config_.open_cooldown;
        consecutive_failures_ = 0;
        ++trips_;
    }
}

CircuitBreaker::State CircuitBreaker::state() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

int CircuitBreaker::trips() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return trips_;
}

int CircuitBreaker::recoveries() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return recoveries_;
}

const char* breaker_state_name(CircuitBreaker::State state) {
    switch (state) {
        case CircuitBreaker::State::kClosed: return "closed";
        case CircuitBreaker::State::kOpen: return "open";
        case CircuitBreaker::State::kHalfOpen: return "half-open";
    }
    return "?";
}

}  // namespace aero::serve
