#pragma once
// Multi-threaded batch inference service in front of a trained
// AeroDiffusionPipeline — the serving entry point the detector-training
// consumers (AeroGen-style bulk augmentation) hit. The failure policy,
// end to end:
//
//   submit() --validate--> kInvalid        (typed reason, no tensor math)
//            --rate limited--> kShed       (per-client token bucket)
//            --deadline already expired--> kTimeout (never enqueued)
//            --ladder rung kShed--> kShed  (overload degradation ladder)
//            --queue full--> kShed         (bounded admission queue)
//   worker   --CoDel sojourn overage--> kShed (standing-queue defence)
//            --deadline already passed--> kTimeout
//            --transient fault--> retry with exponential backoff + jitter
//            --condition-encoder failure--> retry; repeated failures trip
//              the circuit breaker, which serves degraded unconditional
//              samples until a probe succeeds
//            --deadline mid-run--> cancelled between denoising steps
//              (kTimeout; never a half-rendered image)
//            --all attempts exhausted--> kFailed
//
// Every submit() resolves its future with exactly one Outcome, and the
// stats() snapshot balances: submitted == sum over outcomes once all
// futures are ready.
//
// Locking discipline (statically checked by the AERO_GUARDED_BY /
// AERO_EXCLUDES annotations below under `clang++ -Wthread-safety`, and
// TSan-covered by test_serve via scripts/check.sh):
//   * queue_mutex_ guards queues_, active_, accepting_, stopping_ and
//     draining_; sleeps and wake-ups go through queue_cv_.
//   * stats_mutex_ guards the ServiceStats counters.
//   * stop_mutex_ serialises concurrent stop() callers (explicit stop
//     racing the destructor) across the join/clear phase and guards
//     workers_.
//   * the breaker carries its own internal mutex.
//   * the pipeline and substrate are shared strictly read-only —
//     inference builds its autograd graph on fresh nodes and the
//     service never calls fit()/backward() — and every worker owns a
//     private Rng, so model state needs no lock at all.
//   The only nesting is stop_mutex_ -> queue_mutex_ inside stop()
//   (declared via AERO_ACQUIRED_BEFORE); everywhere else at most one of
//   these mutexes is held, and the breaker is only called with all of
//   them released.

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/breaker.hpp"
#include "serve/overload.hpp"
#include "serve/validation.hpp"
#include "util/annotations.hpp"
#include "util/fault.hpp"
#include "util/rate_limit.hpp"
#include "util/sync.hpp"

namespace aero::serve {

struct ServiceConfig {
    int workers = 2;
    std::size_t queue_capacity = 8;  ///< pending requests before shedding
    /// Generation attempts per request (first try + retries) for
    /// transient and condition-encoder faults.
    int max_attempts = 3;
    double backoff_base_ms = 0.5;  ///< doubled per retry, jittered
    double backoff_max_ms = 8.0;
    ValidationLimits limits;
    BreakerConfig breaker;
    /// Optional injector shared with tests/benches; the service draws
    /// the "serve_transient" and "serve_slow" points itself and
    /// forwards the injector to the pipeline for "condition_encoder".
    util::FaultInjector* fault_injector = nullptr;
    /// Stall injected when the "serve_slow" point fires: slept inside
    /// the attempt, after breaker admission and before generation.
    double slow_fault_ms = 50.0;
    /// Adaptive overload control (serve/overload.hpp): AIMD concurrency
    /// limit, CoDel queue discipline, degradation ladder. Off by
    /// default; also gated process-wide by AERO_OVERLOAD.
    OverloadConfig overload;
    /// Per-client token-bucket admission (util/rate_limit.hpp), read
    /// from AERO_RATE_QPS / AERO_RATE_BURST by default (unset = off).
    /// Requests with an empty client_id are exempt.
    util::RateLimitConfig rate_limit = util::RateLimitConfig::from_env();
    /// Continuous cross-request step batching (serve/batcher.hpp): on
    /// by default (also gated process-wide by AERO_BATCH), workers hand
    /// sampling jobs to a shared step batcher. Output is bitwise
    /// identical to the sequential path; batch_max = 1 (or enabled =
    /// false) is a true no-op — no driver thread, inline sampling.
    StepBatcherConfig batch;
    std::uint64_t seed = 0x5e21e;  ///< forked into per-worker Rngs
};

/// Monotonic counters; snapshot via InferenceService::stats().
struct ServiceStats {
    long long submitted = 0;
    long long by_outcome[kNumOutcomes] = {};
    long long retries = 0;  ///< extra attempts across requests
    /// Requests cancelled after dequeue: between denoising steps or in
    /// the dequeue -> first-step window (job deadline or service drain).
    long long cancelled_mid_run = 0;
    /// Rejections by the per-client token-bucket limiter. These resolve
    /// kShed, so they are a subset of by_outcome[kShed] and the books
    /// below stay balanced.
    long long rate_limited = 0;
    /// Queued requests dropped by the CoDel sojourn discipline (also a
    /// subset of by_outcome[kShed]).
    long long codel_dropped = 0;
    /// Terminal results per degradation-ladder rung; sums to terminal().
    long long by_rung[kNumDegradeRungs] = {};
    int breaker_trips = 0;
    int breaker_recoveries = 0;

    long long outcome(Outcome o) const {
        return by_outcome[static_cast<int>(o)];
    }
    long long terminal() const {
        long long sum = 0;
        for (const long long n : by_outcome) sum += n;
        return sum;
    }
    /// The accounting invariant: once every future is resolved, each
    /// submitted request has exactly one terminal outcome.
    bool balanced() const { return submitted == terminal(); }
};

class InferenceService {
public:
    /// The pipeline (and the substrate it references) must outlive the
    /// service and must not be trained while serving.
    InferenceService(const core::AeroDiffusionPipeline& pipeline,
                     const ServiceConfig& config);
    ~InferenceService();
    InferenceService(const InferenceService&) = delete;
    InferenceService& operator=(const InferenceService&) = delete;

    /// Admission control: validates, then either enqueues or resolves
    /// immediately (kInvalid / kShed). The returned future is always
    /// eventually satisfied with a terminal outcome.
    std::future<RequestResult> submit(InferenceRequest request)
        AERO_EXCLUDES(queue_mutex_, stats_mutex_);

    /// Outcome of a bounded drain: every request that was pending when
    /// drain() was called is classified exactly once. `cancelled`
    /// counts step-boundary cancellations (deadline-cancel machinery);
    /// a retry backoff cut short by the drain deadline resolves
    /// kTimeout and counts under `completed` (it reached a terminal
    /// outcome through the normal worker path).
    struct DrainReport {
        long long completed = 0;  ///< resolved by a worker during the drain
        /// Queued jobs resolved unrun: kShed, or kTimeout when the
        /// job's own deadline had already expired at shed time.
        long long shed = 0;
        long long cancelled = 0;  ///< in-flight, cancelled between steps
        long long total() const { return completed + shed + cancelled; }
    };

    /// Graceful-bounded shutdown of the work, not the threads: stops
    /// accepting new requests, lets workers finish what they can until
    /// `deadline_ms` from now, then sheds the still-queued jobs and
    /// cancels in-flight ones at their next denoising-step boundary.
    /// Returns once nothing is pending. Relationship to stop(): stop()
    /// is an unbounded drain (workers finish every queued job) plus a
    /// thread join; drain() bounds the wait, resolves the remainder,
    /// and leaves the workers alive so a later stop() joins them
    /// without further work. The service never accepts again after
    /// either call. The Router uses drain() + stop() for graceful
    /// replica restart and (with deadline 0) for simulated crashes.
    DrainReport drain(double deadline_ms)
        AERO_EXCLUDES(stop_mutex_, queue_mutex_, stats_mutex_);

    /// Stops admission, drains the queued work, joins the workers.
    /// Idempotent and safe against concurrent callers; the destructor
    /// calls it. See drain() for the bounded variant.
    void stop() AERO_EXCLUDES(stop_mutex_, queue_mutex_);

    ServiceStats stats() const AERO_EXCLUDES(stats_mutex_);
    CircuitBreaker::State breaker_state() const { return breaker_.state(); }
    /// Queued + in-flight requests; the router's power-of-two-choices
    /// load signal.
    std::size_t queue_depth() const AERO_EXCLUDES(queue_mutex_);
    /// False once stop() or drain() has closed admission.
    bool accepting() const AERO_EXCLUDES(queue_mutex_);

private:
    using Clock = std::chrono::steady_clock;

    struct Job {
        InferenceRequest request;
        std::promise<RequestResult> promise;
        Clock::time_point submitted_at;
        Clock::time_point deadline;
        bool has_deadline = false;
        /// Ladder rung stamped at admission (kFull when overload
        /// control is off); process() applies it to GenerateControl.
        DegradeRung rung = DegradeRung::kFull;
    };

    /// Dequeue loop. Opted out of the static analysis: the
    /// condition-variable wait releases and re-acquires queue_mutex_
    /// through std::unique_lock, which the analysis cannot follow.
    void worker_loop(std::uint64_t worker_seed)
        AERO_NO_THREAD_SAFETY_ANALYSIS;
    RequestResult process(Job& job, util::Rng& backoff_rng);
    /// True once the job's own deadline or the service drain deadline
    /// has passed — the cancellation predicate polled between denoising
    /// steps and checked in the dequeue -> first-step window.
    bool cancel_due(const Job& job) const;
    void record(const RequestResult& result) AERO_EXCLUDES(stats_mutex_);
    /// Sleeps for the attempt's jittered backoff; false when the sleep
    /// would cross the job's deadline or the drain deadline (caller
    /// times the request out).
    bool backoff(int attempt, const Job& job, util::Rng& rng) const;
    /// Blocks until no job is queued or in flight. `bounded` waits only
    /// until `deadline`; otherwise waits indefinitely. Opted out of the
    /// static analysis for the same unique_lock reason as worker_loop.
    void wait_idle(Clock::time_point deadline, bool bounded)
        AERO_NO_THREAD_SAFETY_ANALYSIS;
    /// Refreshes the breaker state/trips/recoveries gauges.
    void publish_breaker_metrics();
    /// Total queued jobs across both priority classes.
    std::size_t queued_locked() const AERO_REQUIRES(queue_mutex_) {
        std::size_t n = 0;
        for (const std::deque<Job>& q : queues_) n += q.size();
        return n;
    }
    /// Dequeue policy: interactive first, except a batch head that has
    /// waited past the anti-starvation bound. Returns the queue index
    /// to pop from; callers guarantee at least one queue is non-empty.
    int pick_queue_locked(Clock::time_point now) const
        AERO_REQUIRES(queue_mutex_);

    /// Handles into the global obs registry (obs/metric_names.hpp),
    /// resolved once in the constructor so the hot path is pure relaxed
    /// atomics. These are process-wide cumulative metrics; the exact
    /// per-service accounting stays in ServiceStats.
    struct Metrics {
        obs::Counter* submitted = nullptr;
        obs::Counter* outcome[kNumOutcomes] = {};
        obs::Counter* retries = nullptr;
        obs::Counter* cancelled = nullptr;
        obs::Counter* rate_limited = nullptr;
        obs::Gauge* queue_depth = nullptr;
        obs::Gauge* breaker_state = nullptr;
        obs::Gauge* breaker_trips = nullptr;
        obs::Gauge* breaker_recoveries = nullptr;
        obs::Histogram* queue_ms = nullptr;
        obs::Histogram* latency_ms = nullptr;
    };
    static Metrics resolve_metrics();

    const core::AeroDiffusionPipeline* pipeline_;
    ServiceConfig config_;
    CircuitBreaker breaker_;
    Metrics metrics_;
    /// Adaptive overload control: AIMD limit the workers gate on, CoDel
    /// verdicts at dequeue, ladder rungs at admission. Inert (identity
    /// limit, kFull rung) unless config_.overload.enabled and the
    /// AERO_OVERLOAD switch agree.
    AdmissionController controller_;
    /// Per-client token buckets consulted in submit(); the service
    /// feeds it obs::default_clock() timestamps.
    util::RateLimiter limiter_;
    /// Continuous step batcher the workers hand sampling jobs to via
    /// GenerateControl::executor. Null when batching is not live
    /// (config, AERO_BATCH=0, or batch_max <= 1) — the inline path.
    /// stop() shuts it down after the workers are joined.
    std::unique_ptr<StepBatcher> batcher_;

    mutable util::Mutex queue_mutex_;
    util::CondVar queue_cv_;
    /// One FIFO per Priority class. Dequeue prefers interactive; a
    /// batch head older than overload.batch_max_wait_ms wins anyway
    /// (anti-starvation bound).
    std::deque<Job> queues_[kNumPriorities] AERO_GUARDED_BY(queue_mutex_);
    /// Jobs dequeued by a worker whose terminal outcome has not been
    /// recorded yet — the dequeue -> resolve window drain() waits on.
    long long active_ AERO_GUARDED_BY(queue_mutex_) = 0;
    bool accepting_ AERO_GUARDED_BY(queue_mutex_) = true;
    bool stopping_ AERO_GUARDED_BY(queue_mutex_) = false;
    bool draining_ AERO_GUARDED_BY(queue_mutex_) = false;
    /// Steady-clock deadline (ns since epoch) past which in-flight
    /// requests cancel at their next step boundary; max() when no drain
    /// is in progress. Atomic so the per-step cancellation predicate
    /// reads it without taking queue_mutex_.
    std::atomic<long long> drain_deadline_ns_{
        std::numeric_limits<long long>::max()};

    mutable util::Mutex stats_mutex_;
    ServiceStats stats_ AERO_GUARDED_BY(stats_mutex_);

    /// Serialises stop()'s join/clear phase; the only lock nesting in
    /// the service is stop_mutex_ -> queue_mutex_ inside stop().
    util::Mutex stop_mutex_ AERO_ACQUIRED_BEFORE(queue_mutex_);
    std::vector<std::thread> workers_ AERO_GUARDED_BY(stop_mutex_);
};

}  // namespace aero::serve
