#pragma once
// Canonical prompt key: the ONE canonicalisation of an inference
// request's identity, shared by the router's consistent-hash sharding
// (DESIGN.md §13) and the pipeline's condition cache (DESIGN.md §17).
// Keeping both on the same key means the replica a prompt shards to is
// exactly the replica whose condition cache is warm for it.

#include <string>

#include "serve/request.hpp"

namespace aero::serve {

/// Canonicalised sharding key: task kind + lower-cased, whitespace-
/// collapsed captions (util::append_canonical_prompt), so trivially
/// reworded duplicates of a prompt land on the same replica and hit
/// the same cache entries.
std::string canonical_prompt_key(const InferenceRequest& request);

}  // namespace aero::serve
