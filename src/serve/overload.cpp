#include "serve/overload.hpp"

#include <algorithm>
#include <cmath>

#include "util/env.hpp"

namespace aero::serve {

namespace {

std::atomic<bool> g_overload_enabled = [] {
    return util::env_int("AERO_OVERLOAD", 1) != 0;
}();

}  // namespace

bool overload_enabled() {
    return g_overload_enabled.load(std::memory_order_relaxed);
}

void set_overload_enabled(bool on) {
    g_overload_enabled.store(on, std::memory_order_relaxed);
}

AdmissionController::Metrics AdmissionController::resolve_metrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    Metrics m;
    m.limit = &reg.gauge("aero_overload_limit",
                         "adaptive AIMD concurrency limit");
    m.load_index = &reg.gauge("aero_overload_load_index",
                              "smoothed load index (1.0 = at target)");
    m.rung = &reg.gauge("aero_overload_rung",
                        "current base degradation rung (0 full .. 4 shed)");
    m.rung_transition[static_cast<int>(DegradeRung::kFull)] = &reg.counter(
        "aero_overload_rung_full_total", "ladder transitions into full");
    m.rung_transition[static_cast<int>(DegradeRung::kReducedSteps)] =
        &reg.counter("aero_overload_rung_reduced_steps_total",
                     "ladder transitions into reduced DDIM steps");
    m.rung_transition[static_cast<int>(DegradeRung::kReducedResolution)] =
        &reg.counter("aero_overload_rung_reduced_resolution_total",
                     "ladder transitions into half-resolution sampling");
    m.rung_transition[static_cast<int>(DegradeRung::kUnconditional)] =
        &reg.counter("aero_overload_rung_unconditional_total",
                     "ladder transitions into unconditional fallback");
    m.rung_transition[static_cast<int>(DegradeRung::kShed)] = &reg.counter(
        "aero_overload_rung_shed_total", "ladder transitions into shed");
    m.codel_dropped = &reg.counter(
        "aero_overload_codel_dropped_total",
        "queued requests dropped by the CoDel sojourn discipline");
    m.decreases = &reg.counter("aero_overload_decreases_total",
                               "AIMD multiplicative limit decreases");
    return m;
}

AdmissionController::AdmissionController(const OverloadConfig& config,
                                         const obs::Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : &obs::default_clock()),
      enabled_(config.enabled && overload_enabled()),
      metrics_(resolve_metrics()),
      limit_(std::max(1, config.max_limit)),
      limit_exact_(static_cast<double>(std::max(1, config.max_limit))) {
    config_.min_limit = std::max(1, config_.min_limit);
    config_.max_limit = std::max(config_.min_limit, config_.max_limit);
    config_.window = std::max(1, config_.window);
    config_.decrease_factor =
        std::clamp(config_.decrease_factor, 0.05, 0.99);
    config_.load_smoothing = std::clamp(config_.load_smoothing, 0.01, 1.0);
    window_.assign(static_cast<std::size_t>(config_.window), 0.0);
    if (enabled_ && config_.step_target_ms > 0.0) {
        step_histogram_ = &obs::MetricsRegistry::instance().histogram(
            "aero_diffusion_step_ms", "single DDIM denoising step, ms",
            obs::default_ms_buckets());
        // Baseline the cumulative histogram: only steps observed after
        // this controller exists count toward its p99 deltas.
        const obs::Histogram::Snapshot snap = step_histogram_->snapshot();
        step_seen_count_ = snap.count;
        step_seen_cumulative_ = snap.cumulative;
    }
    metrics_.limit->set(static_cast<double>(limit_.load()));
    metrics_.rung->set(0.0);
}

void AdmissionController::set_rung_locked(DegradeRung rung) {
    // Transition accounting contract (overload-accounting lint rule):
    // every write of rung_ increments the matching aero_overload_
    // rung-transition counter on the adjacent line.
    rung_.store(static_cast<int>(rung), std::memory_order_relaxed);
    metrics_.rung_transition[static_cast<int>(rung)]->inc();
    metrics_.rung->set(static_cast<double>(static_cast<int>(rung)));
}

double AdmissionController::ingest_step_p99_locked() {
    if (step_histogram_ == nullptr || !obs::enabled()) return -1.0;
    const obs::Histogram::Snapshot snap = step_histogram_->snapshot();
    if (step_seen_cumulative_.size() != snap.cumulative.size()) {
        step_seen_cumulative_.assign(snap.cumulative.size(), 0);
    }
    const long long fresh = snap.count - step_seen_count_;
    if (fresh <= 0) return -1.0;
    // p99 of the per-bucket deltas since the previous evaluation: the
    // smallest bucket edge covering 99% of the new observations. New
    // observations landing past every finite edge report the last edge
    // (a floor — good enough to detect overshoot, which is all AIMD
    // needs).
    const long long want = (fresh * 99 + 99) / 100;  // ceil(0.99 * fresh)
    double p99 = snap.bounds.empty() ? 0.0 : snap.bounds.back();
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        const long long delta = snap.cumulative[i] - step_seen_cumulative_[i];
        if (delta >= want) {
            p99 = snap.bounds[i];
            break;
        }
    }
    step_seen_count_ = snap.count;
    step_seen_cumulative_ = snap.cumulative;
    step_p99_ms_.store(p99, std::memory_order_relaxed);
    return p99;
}

void AdmissionController::evaluate_locked(std::int64_t now_ns) {
    last_eval_ns_ = now_ns;

    // Latency overshoot: the worse of the request-window p99 and the
    // step-histogram p99, each against its own target.
    double ratio = 0.0;
    bool have_signal = false;
    const std::size_t n =
        std::min(window_count_, window_.size());
    // A poll()-driven evaluation with no completions since the last one
    // has no fresh latency evidence: skip the stale window so the load
    // index decays toward the live queue signal instead of latching.
    if (finishes_since_eval_ > 0 && n > 0 &&
        config_.latency_target_ms > 0.0) {
        std::vector<double> sorted(window_.begin(),
                                   window_.begin() + static_cast<long>(n));
        const std::size_t idx = static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(n - 1)));
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<long>(idx),
                         sorted.end());
        ratio = sorted[idx] / config_.latency_target_ms;
        have_signal = true;
    }
    const double step_p99 = ingest_step_p99_locked();
    if (step_p99 >= 0.0 && config_.step_target_ms > 0.0) {
        ratio = std::max(ratio, step_p99 / config_.step_target_ms);
        have_signal = true;
    }

    // Queue pressure joins the load index (the ladder reacts to a
    // standing queue even while per-request latency looks fine), but
    // not the AIMD term — shrinking concurrency cannot shrink a queue.
    double sojourn_ratio = 0.0;
    if (config_.codel_target_ms > 0.0) {
        sojourn_ratio = max_sojourn_ms_ / config_.codel_target_ms;
    }
    max_sojourn_ms_ = 0.0;

    const double load = std::max(ratio, sojourn_ratio);
    const double alpha = config_.load_smoothing;
    const double index =
        (1.0 - alpha) * load_index_.load(std::memory_order_relaxed) +
        alpha * load;
    load_index_.store(index, std::memory_order_relaxed);
    metrics_.load_index->set(index);

    if (have_signal) {
        const std::int64_t interval_ns =
            static_cast<std::int64_t>(config_.interval_ms * 1e6);
        if (ratio > 1.0) {
            if (now_ns - last_decrease_ns_ >= interval_ns) {
                last_decrease_ns_ = now_ns;
                limit_exact_ = std::max(
                    static_cast<double>(config_.min_limit),
                    limit_exact_ * config_.decrease_factor);
                decreases_.fetch_add(1, std::memory_order_relaxed);
                metrics_.decreases->inc();
            }
        } else {
            limit_exact_ =
                std::min(static_cast<double>(config_.max_limit),
                         limit_exact_ + config_.additive_increase);
        }
        limit_.store(static_cast<int>(limit_exact_),
                     std::memory_order_relaxed);
        metrics_.limit->set(std::floor(limit_exact_));
    }

    // Ladder: map the smoothed index through the ascending thresholds.
    DegradeRung rung = DegradeRung::kFull;
    for (int i = 0; i < kNumDegradeRungs - 1; ++i) {
        if (index >= config_.rung_thresholds[i]) {
            rung = static_cast<DegradeRung>(i + 1);
        }
    }
    if (rung != static_cast<DegradeRung>(
                    rung_.load(std::memory_order_relaxed))) {
        set_rung_locked(rung);
    }
    finishes_since_eval_ = 0;
}

void AdmissionController::on_finish(double latency_ms) {
    if (!enabled_) return;
    const util::MutexLock lock(mutex_);
    window_[window_next_] = latency_ms;
    window_next_ = (window_next_ + 1) % window_.size();
    ++window_count_;
    ++finishes_since_eval_;
    evaluate_locked(clock_->now_ns());
}

void AdmissionController::poll() {
    if (!enabled_) return;
    const util::MutexLock lock(mutex_);
    const std::int64_t now_ns = clock_->now_ns();
    // Queue state changes on the CoDel timescale, not the AIMD one:
    // decaying faster than codel_interval_ms would collapse the index
    // between two completions and flap the ladder full <-> shed.
    const std::int64_t interval_ns =
        static_cast<std::int64_t>(config_.codel_interval_ms * 1e6);
    if (now_ns - last_eval_ns_ >= interval_ns) evaluate_locked(now_ns);
}

void AdmissionController::inject_spike() {
    if (!enabled_) return;
    const util::MutexLock lock(mutex_);
    window_[window_next_] = config_.spike_factor * config_.latency_target_ms;
    window_next_ = (window_next_ + 1) % window_.size();
    ++window_count_;
    ++finishes_since_eval_;
    evaluate_locked(clock_->now_ns());
}

bool AdmissionController::codel_drop(double sojourn_ms) {
    if (!enabled_) return false;
    const util::MutexLock lock(mutex_);
    max_sojourn_ms_ = std::max(max_sojourn_ms_, sojourn_ms);
    if (sojourn_ms < config_.codel_target_ms ||
        config_.codel_target_ms <= 0.0) {
        codel_first_over_ns_ = 0;
        codel_drop_count_ = 0;
        return false;
    }
    const std::int64_t now_ns = clock_->now_ns();
    const std::int64_t interval_ns =
        static_cast<std::int64_t>(config_.codel_interval_ms * 1e6);
    if (codel_first_over_ns_ == 0) {
        // First overage: start the grace interval, don't drop yet.
        codel_first_over_ns_ = now_ns;
        codel_drop_next_ns_ = now_ns + interval_ns;
        return false;
    }
    if (now_ns < codel_drop_next_ns_) return false;
    // Sustained overage: drop, and accelerate the next drop by the
    // CoDel control law (interval / sqrt(drop count)).
    ++codel_drop_count_;
    codel_drop_next_ns_ =
        now_ns + static_cast<std::int64_t>(
                     static_cast<double>(interval_ns) /
                     std::sqrt(static_cast<double>(codel_drop_count_ + 1)));
    codel_drops_.fetch_add(1, std::memory_order_relaxed);
    metrics_.codel_dropped->inc();
    return true;
}

DegradeRung AdmissionController::rung_for(Priority priority) const {
    if (!enabled_) return DegradeRung::kFull;
    if (priority == Priority::kInteractive) {
        return static_cast<DegradeRung>(
            rung_.load(std::memory_order_relaxed));
    }
    // Batch reads the ladder biased toward more degradation, so bulk
    // traffic gives up quality (and eventually admission) first.
    const double index =
        load_index_.load(std::memory_order_relaxed) + config_.batch_bias;
    DegradeRung rung = DegradeRung::kFull;
    for (int i = 0; i < kNumDegradeRungs - 1; ++i) {
        if (index >= config_.rung_thresholds[i]) {
            rung = static_cast<DegradeRung>(i + 1);
        }
    }
    // Never milder than the interactive base rung.
    return std::max(rung, static_cast<DegradeRung>(
                              rung_.load(std::memory_order_relaxed)));
}

}  // namespace aero::serve
