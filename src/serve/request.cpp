#include "serve/request.hpp"

namespace aero::serve {

const char* task_kind_name(TaskKind task) {
    switch (task) {
        case TaskKind::kGenerate: return "generate";
        case TaskKind::kEdit: return "edit";
        case TaskKind::kInpaint: return "inpaint";
    }
    return "?";
}

const char* priority_name(Priority priority) {
    switch (priority) {
        case Priority::kInteractive: return "interactive";
        case Priority::kBatch: return "batch";
    }
    return "?";
}

const char* degrade_rung_name(DegradeRung rung) {
    switch (rung) {
        case DegradeRung::kFull: return "full";
        case DegradeRung::kReducedSteps: return "reduced_steps";
        case DegradeRung::kReducedResolution: return "reduced_resolution";
        case DegradeRung::kUnconditional: return "unconditional";
        case DegradeRung::kShed: return "shed";
    }
    return "?";
}

const char* outcome_name(Outcome outcome) {
    switch (outcome) {
        case Outcome::kOk: return "ok";
        case Outcome::kDegraded: return "degraded";
        case Outcome::kShed: return "shed";
        case Outcome::kInvalid: return "invalid";
        case Outcome::kTimeout: return "timeout";
        case Outcome::kFailed: return "failed";
    }
    return "?";
}

const char* invalid_reason_name(InvalidReason reason) {
    switch (reason) {
        case InvalidReason::kNone: return "none";
        case InvalidReason::kEmptyCaption: return "empty_caption";
        case InvalidReason::kCaptionTooLong: return "caption_too_long";
        case InvalidReason::kCaptionNotText: return "caption_not_text";
        case InvalidReason::kCaptionUnknownWords:
            return "caption_unknown_words";
        case InvalidReason::kBadReferenceImage: return "bad_reference_image";
        case InvalidReason::kBadRegion: return "bad_region";
        case InvalidReason::kBadStrength: return "bad_strength";
        case InvalidReason::kBadDeadline: return "bad_deadline";
    }
    return "?";
}

}  // namespace aero::serve
