#include "serve/key.hpp"

#include "util/strings.hpp"

namespace aero::serve {

std::string canonical_prompt_key(const InferenceRequest& request) {
    std::string key = task_kind_name(request.task);
    key += '|';
    util::append_canonical_prompt(key, request.source_caption);
    key += '|';
    util::append_canonical_prompt(key, request.target_caption);
    return key;
}

}  // namespace aero::serve
