#pragma once
// Continuous cross-request step batching for the serve path
// (DESIGN.md §16). A StepBatcher owns one driver thread running a
// diffusion::BatchedDdimScheduler: service workers hand their sampling
// jobs over through execute() (a diffusion::SamplerExecutor), the
// driver packs every in-flight job into one batched UNet forward per
// denoising step, admits newly arrived jobs at step boundaries, and
// resolves each worker's future when its job retires. Per-request
// deadlines, overload rungs and priorities keep working unchanged:
// the rung shaped the job's DdimConfig before hand-off, and the job's
// should_cancel is polled inside the engine at every step boundary
// (plus mid-step under Heun), so one member of the batch cancelling
// never stalls the rest.
//
// The bitwise contract: because the engine draws from each job's own
// caller-provided Rng in sequential order, a batched run produces
// memcmp-identical latents to the sequential path at every batch size,
// including mid-flight joins and retirements. With the batcher not
// live (config disabled, AERO_BATCH=0, or batch_max <= 1) the service
// leaves GenerateControl::executor unset and the serve path is the
// pre-batching code, bit for bit.

#include <cstdint>
#include <deque>
#include <future>
#include <thread>

#include "diffusion/sampler.hpp"
#include "obs/metrics.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::serve {

/// Process-wide batching switch, initialised once from AERO_BATCH
/// (0 disables; anything else, or unset, enables).
bool batching_enabled();
/// Test/bench hook; takes effect on the next StepBatcher construction.
void set_batching_enabled(bool on);

struct StepBatcherConfig {
    /// Master switch for this batcher; ANDed with batching_enabled().
    bool enabled = true;
    /// Concurrent jobs packed into one denoising step. 1 (or 0) turns
    /// batching off entirely — no driver thread, no hand-off.
    int batch_max = 8;
};

/// True when a batcher built from `config` will actually batch. When
/// false the service keeps the inline sampling path (a true no-op).
bool step_batching_live(const StepBatcherConfig& config);

class StepBatcher final : public diffusion::SamplerExecutor {
public:
    /// `unet` and `schedule` (a pipeline's, via unet() /
    /// noise_schedule()) must outlive the batcher; they are only ever
    /// read. The driver thread starts immediately when
    /// step_batching_live(config).
    StepBatcher(const diffusion::UNet& unet,
                const diffusion::NoiseSchedule& schedule,
                const StepBatcherConfig& config);
    ~StepBatcher() override;
    StepBatcher(const StepBatcher&) = delete;
    StepBatcher& operator=(const StepBatcher&) = delete;

    /// Whether this instance batches (captured at construction).
    bool live() const { return live_; }

    /// Blocks until the job retires; empty tensor = cancelled. Safe to
    /// call from many worker threads concurrently. On a non-live
    /// batcher this degenerates to the inline sequential path.
    tensor::Tensor execute(diffusion::SamplerJob job) override;

    /// Drains in-flight jobs and joins the driver thread. Idempotent;
    /// the destructor calls it. The owning service must stop its
    /// workers first — execute() after shutdown() resolves empty.
    /// (Named distinctly from InferenceService::stop so call sites
    /// resolve unambiguously, for readers and for aero_lint alike.)
    void shutdown() AERO_EXCLUDES(stop_mutex_, mutex_);

    /// Counters for tests/benches; admitted == completed + cancelled
    /// once every execute() call has returned.
    struct Stats {
        long long admitted = 0;
        long long completed = 0;
        long long cancelled = 0;
        std::size_t peak_batch = 0;  ///< max jobs sharing one step
    };
    Stats stats() const AERO_EXCLUDES(mutex_);

private:
    struct Pending {
        diffusion::SamplerJob job;
        std::promise<tensor::Tensor> promise;
    };

    /// Driver thread: admit pending jobs at the step boundary, run one
    /// batched step, resolve retired jobs, repeat. The scheduler and
    /// the id -> promise map are confined to this thread. Opted out of
    /// the static analysis: the condition-variable wait releases and
    /// re-acquires mutex_ through std::unique_lock, which the analysis
    /// cannot follow (same idiom as InferenceService::worker_loop).
    void driver_loop() AERO_NO_THREAD_SAFETY_ANALYSIS;

    const diffusion::UNet* unet_;
    const diffusion::NoiseSchedule* schedule_;
    StepBatcherConfig config_;
    bool live_ = false;
    obs::Gauge* occupancy_ = nullptr;

    mutable util::Mutex mutex_;
    util::CondVar cv_;
    std::deque<Pending> pending_ AERO_GUARDED_BY(mutex_);
    bool stopping_ AERO_GUARDED_BY(mutex_) = false;
    Stats stats_ AERO_GUARDED_BY(mutex_);

    /// Serialises concurrent stop() callers (explicit stop racing the
    /// destructor) across the join; the only nesting is
    /// stop_mutex_ -> mutex_ inside stop().
    util::Mutex stop_mutex_ AERO_ACQUIRED_BEFORE(mutex_);
    std::thread driver_ AERO_GUARDED_BY(stop_mutex_);
};

}  // namespace aero::serve
