#pragma once
// AdamW optimizer (decoupled weight decay), as used for all training in
// the paper (Adam, lr 1e-5, weight decay 1e-5 -- scaled for our model
// sizes via config).

#include <vector>

#include "autograd/var.hpp"

namespace aero::nn {

struct AdamConfig {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 1e-5f;
};

class Adam {
public:
    Adam(std::vector<autograd::Var> params, AdamConfig config);

    /// Applies one update from the gradients currently stored on the
    /// parameters, then leaves gradients untouched (caller zeroes them).
    void step();

    /// Clears gradients on all managed parameters.
    void zero_grad();

    /// Rescales every gradient so the global L2 norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    float clip_grad_norm(float max_norm);

    const AdamConfig& config() const { return config_; }
    void set_lr(float lr) { config_.lr = lr; }

private:
    std::vector<autograd::Var> params_;
    AdamConfig config_;
    std::vector<tensor::Tensor> m_;
    std::vector<tensor::Tensor> v_;
    long step_count_ = 0;
};

}  // namespace aero::nn
