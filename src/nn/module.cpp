#include "nn/module.hpp"

#include <cmath>

namespace aero::nn {

std::vector<Var> Module::parameters() const {
    std::vector<Var> all = params_;
    for (const Module* child : children_) {
        std::vector<Var> sub = child->parameters();
        all.insert(all.end(), sub.begin(), sub.end());
    }
    return all;
}

int Module::parameter_count() const {
    int total = 0;
    for (const Var& p : parameters()) total += p.value().size();
    return total;
}

void Module::zero_grad() {
    for (Var& p : parameters()) p.zero_grad();
}

Var Module::register_parameter(Tensor initial) {
    params_.push_back(Var::param(std::move(initial)));
    return params_.back();
}

void Module::register_child(Module& child) { children_.push_back(&child); }

Tensor kaiming_uniform(std::vector<int> shape, int fan_in, util::Rng& rng) {
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
    return Tensor::uniform(std::move(shape), rng, -bound, bound);
}

Tensor xavier_uniform(std::vector<int> shape, int fan_in, int fan_out,
                      util::Rng& rng) {
    const float bound = std::sqrt(
        6.0f / static_cast<float>(fan_in + fan_out > 0 ? fan_in + fan_out : 1));
    return Tensor::uniform(std::move(shape), rng, -bound, bound);
}

}  // namespace aero::nn
