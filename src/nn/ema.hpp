#pragma once
// Exponential moving average of parameters -- the standard trick for
// diffusion models: the sampled weights are a smoothed trajectory
// average rather than the last (noisy) SGD iterate.

#include <vector>

#include "autograd/var.hpp"

namespace aero::nn {

class Ema {
public:
    /// Snapshot of `params` with the given decay per update.
    Ema(std::vector<autograd::Var> params, float decay = 0.995f);

    /// Folds the current parameter values into the average:
    /// shadow = decay * shadow + (1 - decay) * param.
    void update();

    /// Writes the averaged weights into the live parameters (keeping a
    /// backup for restore()).
    void apply();

    /// Restores the live weights saved by the last apply().
    void restore();

    float decay() const { return decay_; }

private:
    std::vector<autograd::Var> params_;
    std::vector<tensor::Tensor> shadow_;
    std::vector<tensor::Tensor> backup_;
    float decay_;
    bool applied_ = false;
};

}  // namespace aero::nn
