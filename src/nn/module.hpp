#pragma once
// Base class for trainable network components. A Module owns leaf
// parameter `Var`s and (optionally) child modules; `parameters()` walks
// the tree so optimizers and serializers see a flat list. Modules are
// identity objects: non-copyable, stable addresses.

#include <string>
#include <vector>

#include "autograd/var.hpp"
#include "util/rng.hpp"

namespace aero::nn {

using autograd::Var;
using tensor::Tensor;

class Module {
public:
    Module() = default;
    virtual ~Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /// All trainable parameters of this module and its children,
    /// depth-first in registration order.
    std::vector<Var> parameters() const;

    /// Total scalar parameter count.
    int parameter_count() const;

    /// Clears gradients on every parameter.
    void zero_grad();

protected:
    /// Registers a trainable tensor; returns its Var handle.
    Var register_parameter(Tensor initial);

    /// Registers a child whose parameters are folded into parameters().
    /// The child must outlive this module (normally a data member).
    void register_child(Module& child);

private:
    std::vector<Var> params_;
    std::vector<const Module*> children_;
};

// ---- initialisers -----------------------------------------------------------

/// Kaiming-uniform fan-in initialisation for weights with `fan_in` inputs.
Tensor kaiming_uniform(std::vector<int> shape, int fan_in, util::Rng& rng);

/// Xavier-uniform initialisation.
Tensor xavier_uniform(std::vector<int> shape, int fan_in, int fan_out,
                      util::Rng& rng);

}  // namespace aero::nn
