#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace aero::nn {

namespace {
constexpr std::uint32_t kMagic = 0x41455244;  // "AERD"
}

bool save_parameters(const Module& module, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;

    const std::vector<Var> params = module.parameters();
    const auto count = static_cast<std::uint32_t>(params.size());
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Var& p : params) {
        const Tensor& t = p.value();
        const auto rank = static_cast<std::uint32_t>(t.rank());
        out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
        for (int d = 0; d < t.rank(); ++d) {
            const auto extent = static_cast<std::uint32_t>(t.dim(d));
            out.write(reinterpret_cast<const char*>(&extent), sizeof(extent));
        }
        out.write(reinterpret_cast<const char*>(t.data()),
                  static_cast<std::streamsize>(sizeof(float) * t.size()));
    }
    return static_cast<bool>(out);
}

bool load_parameters(Module& module, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;

    std::uint32_t magic = 0;
    std::uint32_t count = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in || magic != kMagic) return false;

    std::vector<Var> params = module.parameters();
    if (count != params.size()) return false;

    for (Var& p : params) {
        std::uint32_t rank = 0;
        in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
        if (!in || rank != static_cast<std::uint32_t>(p.value().rank())) {
            return false;
        }
        for (int d = 0; d < p.value().rank(); ++d) {
            std::uint32_t extent = 0;
            in.read(reinterpret_cast<char*>(&extent), sizeof(extent));
            if (!in || extent != static_cast<std::uint32_t>(p.value().dim(d))) {
                return false;
            }
        }
        in.read(reinterpret_cast<char*>(p.mutable_value().data()),
                static_cast<std::streamsize>(sizeof(float) *
                                             p.value().size()));
        if (!in) return false;
    }
    return true;
}

}  // namespace aero::nn
