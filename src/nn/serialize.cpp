#include "nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/hash.hpp"
#include "util/log.hpp"

namespace aero::nn {

namespace {

constexpr std::uint32_t kMagicV1 = 0x41455244;  // "AERD" (legacy, refused)
constexpr std::uint32_t kMagicV2 = 0x32524541;  // "AER2"

bool write_u32(std::ofstream& out, std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    return static_cast<bool>(out);
}

bool read_u32(std::ifstream& in, std::uint32_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
}

bool reject(const std::string& path, const std::string& reason) {
    util::log_warn() << "checkpoint " << path << " rejected: " << reason;
    return false;
}

}  // namespace

bool save_parameters(const Module& module, const std::string& path) {
    // Stage the whole file under a temporary name; rename() is atomic on
    // POSIX, so readers see either the old complete file or the new one.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) return false;

        const std::vector<Var> params = module.parameters();
        bool ok = write_u32(out, kMagicV2) &&
                  write_u32(out, kCheckpointVersion) &&
                  write_u32(out, static_cast<std::uint32_t>(params.size()));
        for (const Var& p : params) {
            if (!ok) break;
            const Tensor& t = p.value();
            ok = write_u32(out, static_cast<std::uint32_t>(t.rank()));
            for (int d = 0; ok && d < t.rank(); ++d) {
                ok = write_u32(out, static_cast<std::uint32_t>(t.dim(d)));
            }
            if (!ok) break;
            const std::size_t bytes = sizeof(float) *
                                      static_cast<std::size_t>(t.size());
            ok = write_u32(out, util::crc32(t.data(), bytes));
            out.write(reinterpret_cast<const char*>(t.data()),
                      static_cast<std::streamsize>(bytes));
            ok = ok && static_cast<bool>(out);
        }
        if (!ok) {
            out.close();
            std::remove(tmp_path.c_str());
            return false;
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

bool load_parameters(Module& module, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return reject(path, "cannot open file");

    std::uint32_t magic = 0;
    if (!read_u32(in, &magic)) return reject(path, "truncated header");
    if (magic == kMagicV1) {
        return reject(path,
                      "old v1 format (no checksums); re-save with the "
                      "current build");
    }
    if (magic != kMagicV2) return reject(path, "bad magic (not a checkpoint)");

    std::uint32_t version = 0;
    std::uint32_t count = 0;
    if (!read_u32(in, &version) || !read_u32(in, &count)) {
        return reject(path, "truncated header");
    }
    if (version != kCheckpointVersion) {
        return reject(path, "unsupported format version " +
                                std::to_string(version));
    }

    std::vector<Var> params = module.parameters();
    if (count != params.size()) {
        return reject(path, "parameter count mismatch (file " +
                                std::to_string(count) + ", module " +
                                std::to_string(params.size()) + ")");
    }

    // Stage: read and validate every tensor before touching the module.
    std::vector<std::vector<float>> staged(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        const Tensor& expected = params[i].value();
        std::uint32_t rank = 0;
        if (!read_u32(in, &rank)) return reject(path, "truncated tensor header");
        if (rank != static_cast<std::uint32_t>(expected.rank())) {
            return reject(path, "rank mismatch on tensor " +
                                    std::to_string(i));
        }
        for (int d = 0; d < expected.rank(); ++d) {
            std::uint32_t extent = 0;
            if (!read_u32(in, &extent)) {
                return reject(path, "truncated tensor header");
            }
            if (extent != static_cast<std::uint32_t>(expected.dim(d))) {
                return reject(path, "shape mismatch on tensor " +
                                        std::to_string(i) + " (expected " +
                                        expected.shape_string() + ")");
            }
        }
        std::uint32_t stored_crc = 0;
        if (!read_u32(in, &stored_crc)) {
            return reject(path, "truncated tensor header");
        }
        std::vector<float> values(static_cast<std::size_t>(expected.size()));
        const std::size_t bytes = sizeof(float) * values.size();
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(bytes));
        if (!in) return reject(path, "truncated payload on tensor " +
                                         std::to_string(i));
        if (util::crc32(values.data(), bytes) != stored_crc) {
            return reject(path, "checksum mismatch on tensor " +
                                    std::to_string(i) + " (corrupt payload)");
        }
        staged[i] = std::move(values);
    }
    if (in.peek() != std::ifstream::traits_type::eof()) {
        return reject(path, "trailing bytes after last tensor");
    }

    // Commit: everything validated, now update the module in one sweep.
    for (std::size_t i = 0; i < params.size(); ++i) {
        params[i].mutable_value().copy_from(
            staged[i].data(), static_cast<int>(staged[i].size()));
    }
    return true;
}

}  // namespace aero::nn
