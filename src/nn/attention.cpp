#include "nn/attention.hpp"

#include <cassert>
#include <cmath>

namespace aero::nn {

namespace ag = aero::autograd;

MultiHeadAttention::MultiHeadAttention(int dim, int heads, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
    assert(dim % heads == 0);
    register_child(wq_);
    register_child(wk_);
    register_child(wv_);
    register_child(wo_);
}

Var MultiHeadAttention::forward(const Var& query, const Var& context) const {
    assert(query.value().rank() == 2 && query.value().dim(1) == dim_);
    assert(context.value().rank() == 2 && context.value().dim(1) == dim_);

    const Var q = wq_.forward(query);    // [Tq, dim]
    const Var k = wk_.forward(context);  // [Tk, dim]
    const Var v = wv_.forward(context);  // [Tk, dim]

    const float inv_sqrt_dk =
        1.0f / std::sqrt(static_cast<float>(head_dim_));

    std::vector<Var> head_outputs;
    head_outputs.reserve(static_cast<std::size_t>(heads_));
    for (int h = 0; h < heads_; ++h) {
        const int lo = h * head_dim_;
        const int hi = lo + head_dim_;
        const Var qh = ag::slice(q, 1, lo, hi);  // [Tq, hd]
        const Var kh = ag::slice(k, 1, lo, hi);  // [Tk, hd]
        const Var vh = ag::slice(v, 1, lo, hi);  // [Tk, hd]
        // softmax(Q K^T / sqrt(d_k)) V  -- Eq. 2.
        const Var scores =
            ag::scale(ag::matmul(qh, ag::transpose2d(kh)), inv_sqrt_dk);
        const Var weights = ag::softmax_rows(scores);  // [Tq, Tk]
        head_outputs.push_back(ag::matmul(weights, vh));
    }
    const Var merged = ag::concat(head_outputs, 1);  // [Tq, dim]
    return wo_.forward(merged);
}

TransformerBlock::TransformerBlock(int dim, int heads, util::Rng& rng)
    : norm1_(dim), attn_(dim, heads, rng), norm2_(dim),
      mlp_(dim, dim * 2, dim, rng) {
    register_child(norm1_);
    register_child(attn_);
    register_child(norm2_);
    register_child(mlp_);
}

Var TransformerBlock::forward(const Var& x) const {
    Var h = ag::add(x, attn_.forward(norm1_.forward(x)));
    return ag::add(h, mlp_.forward(norm2_.forward(h)));
}

}  // namespace aero::nn
