#include "nn/layers.hpp"

#include <algorithm>

namespace aero::nn {

namespace ag = aero::autograd;

Linear::Linear(int in_features, int out_features, util::Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
    weight_ = register_parameter(
        kaiming_uniform({in_features, out_features}, in_features, rng));
    if (with_bias) {
        bias_ = register_parameter(Tensor::zeros({out_features}));
    }
}

Var Linear::forward(const Var& x) const {
    Var out = ag::matmul(x, weight_);
    if (bias_.defined()) out = ag::add_row_bias(out, bias_);
    return out;
}

void Linear::init_zero() {
    for (float& v : weight_.mutable_value()) v = 0.0f;
    if (bias_.defined()) {
        for (float& v : bias_.mutable_value()) v = 0.0f;
    }
}

void Linear::init_identity() {
    init_zero();
    const int n = std::min(in_features_, out_features_);
    for (int i = 0; i < n; ++i) {
        weight_.mutable_value()[i * out_features_ + i] = 1.0f;
    }
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, util::Rng& rng, bool with_bias)
    : out_channels_(out_channels), spec_{stride, pad} {
    const int fan_in = in_channels * kernel * kernel;
    weight_ = register_parameter(kaiming_uniform(
        {out_channels, in_channels, kernel, kernel}, fan_in, rng));
    if (with_bias) {
        bias_ = register_parameter(Tensor::zeros({out_channels}));
    }
}

Var Conv2d::forward(const Var& x) const {
    return ag::conv2d(x, weight_, bias_, spec_);
}

GroupNorm::GroupNorm(int channels, int groups) : groups_(groups) {
    gamma_ = register_parameter(Tensor::ones({channels}));
    beta_ = register_parameter(Tensor::zeros({channels}));
}

Var GroupNorm::forward(const Var& x) const {
    return ag::group_norm(x, groups_, gamma_, beta_);
}

LayerNorm::LayerNorm(int features) {
    gamma_ = register_parameter(Tensor::ones({features}));
    beta_ = register_parameter(Tensor::zeros({features}));
}

Var LayerNorm::forward(const Var& x) const {
    return ag::layer_norm_rows(x, gamma_, beta_);
}

Embedding::Embedding(int vocab, int dim, util::Rng& rng)
    : vocab_(vocab), dim_(dim) {
    table_ = register_parameter(
        Tensor::randn({vocab, dim}, rng, 0.0f, 0.02f));
}

Var Embedding::forward(const std::vector<int>& indices) const {
    return ag::embedding(table_, indices);
}

Mlp::Mlp(int in_features, int hidden, int out_features, util::Rng& rng)
    : fc1_(in_features, hidden, rng), fc2_(hidden, out_features, rng) {
    register_child(fc1_);
    register_child(fc2_);
}

Var Mlp::forward(const Var& x) const {
    return fc2_.forward(ag::silu(fc1_.forward(x)));
}

}  // namespace aero::nn
