#include "nn/optimizer.hpp"

#include <cmath>

namespace aero::nn {

Adam::Adam(std::vector<autograd::Var> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const autograd::Var& p : params_) {
        m_.emplace_back(p.value().shape());
        v_.emplace_back(p.value().shape());
    }
}

void Adam::step() {
    ++step_count_;
    const float bias1 =
        1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
    const float bias2 =
        1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

    for (std::size_t i = 0; i < params_.size(); ++i) {
        autograd::Var& p = params_[i];
        const tensor::Tensor& g = p.grad();
        if (g.empty()) continue;
        tensor::Tensor& m = m_[i];
        tensor::Tensor& v = v_[i];
        float* pv = p.mutable_value().data();
        const float* pg = g.data();
        for (int j = 0; j < g.size(); ++j) {
            m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * pg[j];
            v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * pg[j] * pg[j];
            const float m_hat = m[j] / bias1;
            const float v_hat = v[j] / bias2;
            // Decoupled weight decay (AdamW).
            pv[j] -= config_.lr *
                     (m_hat / (std::sqrt(v_hat) + config_.eps) +
                      config_.weight_decay * pv[j]);
        }
    }
}

void Adam::zero_grad() {
    for (autograd::Var& p : params_) p.zero_grad();
}

float Adam::clip_grad_norm(float max_norm) {
    double total = 0.0;
    for (const autograd::Var& p : params_) {
        const tensor::Tensor& g = p.grad();
        for (float gv : g) total += static_cast<double>(gv) * gv;
    }
    const float norm = static_cast<float>(std::sqrt(total));
    if (norm > max_norm && norm > 0.0f) {
        const float scale = max_norm / norm;
        for (autograd::Var& p : params_) {
            // Var::grad() is const-read; scale through the node.
            tensor::Tensor& g = const_cast<tensor::Tensor&>(p.grad());
            for (float& gv : g) gv *= scale;
        }
    }
    return norm;
}

}  // namespace aero::nn
