#pragma once
// Standard trainable layers built on autograd ops.

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace aero::nn {

/// Fully connected layer: y = x W + b for x of shape [m, in].
class Linear : public Module {
public:
    Linear(int in_features, int out_features, util::Rng& rng,
           bool with_bias = true);

    Var forward(const Var& x) const;

    int in_features() const { return in_features_; }
    int out_features() const { return out_features_; }

    /// Overwrites the weights with zeros (and zero bias): the layer
    /// starts as a no-op contribution on residual paths.
    void init_zero();
    /// Overwrites a square layer with the identity map.
    void init_identity();

private:
    int in_features_;
    int out_features_;
    Var weight_;  ///< [in, out]
    Var bias_;    ///< [out] (undefined when bias disabled)
};

/// 2-D convolution over NCHW tensors.
class Conv2d : public Module {
public:
    Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
           util::Rng& rng, bool with_bias = true);

    Var forward(const Var& x) const;

    int out_channels() const { return out_channels_; }

private:
    int out_channels_;
    tensor::Conv2dSpec spec_;
    Var weight_;  ///< [oc, ic, k, k]
    Var bias_;    ///< [oc]
};

/// Group normalisation with learned per-channel affine.
class GroupNorm : public Module {
public:
    GroupNorm(int channels, int groups);

    Var forward(const Var& x) const;

private:
    int groups_;
    Var gamma_;
    Var beta_;
};

/// Row-wise layer normalisation with learned affine.
class LayerNorm : public Module {
public:
    explicit LayerNorm(int features);

    Var forward(const Var& x) const;

private:
    Var gamma_;
    Var beta_;
};

/// Token-id to vector lookup table.
class Embedding : public Module {
public:
    Embedding(int vocab, int dim, util::Rng& rng);

    Var forward(const std::vector<int>& indices) const;

    int dim() const { return dim_; }
    int vocab() const { return vocab_; }

private:
    int vocab_;
    int dim_;
    Var table_;  ///< [vocab, dim]
};

/// Two-layer MLP with SiLU, the feed-forward block used throughout.
class Mlp : public Module {
public:
    Mlp(int in_features, int hidden, int out_features, util::Rng& rng);

    Var forward(const Var& x) const;

private:
    Linear fc1_;
    Linear fc2_;
};

}  // namespace aero::nn
