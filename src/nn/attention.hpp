#pragma once
// Multi-head scaled dot-product attention (Eq. 2-3 of the paper).
// Operates on unbatched token matrices [T, d]; the library's sequence
// lengths are tiny (a handful of region tokens / caption tokens), so
// per-head slicing in a loop is both clear and fast enough.

#include "nn/layers.hpp"

namespace aero::nn {

class MultiHeadAttention : public Module {
public:
    /// `dim` must be divisible by `heads`.
    MultiHeadAttention(int dim, int heads, util::Rng& rng);

    /// Cross-attention: queries from `query` [Tq, dim], keys/values from
    /// `context` [Tk, dim]. Self-attention is forward(x, x).
    Var forward(const Var& query, const Var& context) const;

    /// Self-attention convenience wrapper.
    Var forward(const Var& x) const { return forward(x, x); }

    int dim() const { return dim_; }
    int heads() const { return heads_; }

    /// Zero-initialises the output projection: on residual paths the
    /// attention starts as a no-op and fades in during training (the
    /// standard initialisation for attention blocks added to pretrained
    /// or jointly trained stacks).
    void init_output_zero() { wo_.init_zero(); }

private:
    int dim_;
    int heads_;
    int head_dim_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;
};

/// Pre-norm transformer block: x + attn(LN(x)), then x + MLP(LN(x)).
class TransformerBlock : public Module {
public:
    TransformerBlock(int dim, int heads, util::Rng& rng);

    Var forward(const Var& x) const;

private:
    LayerNorm norm1_;
    MultiHeadAttention attn_;
    LayerNorm norm2_;
    Mlp mlp_;
};

}  // namespace aero::nn
