#pragma once
// Flat binary checkpointing for module parameters. The format is a
// magic header, a parameter count, then per-parameter rank/shape/floats.
// Loading requires an identically structured module.

#include <string>

#include "nn/module.hpp"

namespace aero::nn {

/// Writes all parameters of `module` to `path`. Returns false on I/O error.
bool save_parameters(const Module& module, const std::string& path);

/// Loads parameters saved by save_parameters into `module`. Returns false
/// on I/O error or any shape mismatch (module left partially updated only
/// on a mismatch after some tensors were already read).
bool load_parameters(Module& module, const std::string& path);

}  // namespace aero::nn
