#pragma once
// Flat binary checkpointing for module parameters, format v2.
//
// Layout (all integers little-endian u32):
//   magic "AER2" | version | parameter count
//   then per parameter: rank | extents[rank] | crc32(payload) | payload
// where payload is the tensor's float32 data. Writes are atomic (tmp
// file + rename) so a crash mid-save never leaves a torn checkpoint at
// the target path. Loads stage every tensor and verify shapes and
// checksums BEFORE committing, so a corrupt / truncated / mismatched
// file never partially mutates the module. Old v1 files (magic "AERD",
// no version, no checksums) are detected and refused with a log line.

#include <string>

#include "nn/module.hpp"

namespace aero::nn {

/// Current checkpoint format version written by save_parameters.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Writes all parameters of `module` to `path` atomically. Returns false
/// on I/O error (the previous file at `path`, if any, is left intact).
bool save_parameters(const Module& module, const std::string& path);

/// Loads parameters saved by save_parameters into `module`. Returns
/// false -- with the module completely untouched -- on I/O error, bad
/// magic/version, shape mismatch, checksum mismatch, or trailing bytes.
bool load_parameters(Module& module, const std::string& path);

}  // namespace aero::nn
