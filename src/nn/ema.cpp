#include "nn/ema.hpp"

#include <cassert>

namespace aero::nn {

Ema::Ema(std::vector<autograd::Var> params, float decay)
    : params_(std::move(params)), decay_(decay) {
    shadow_.reserve(params_.size());
    for (const autograd::Var& p : params_) {
        shadow_.push_back(p.value());
    }
}

void Ema::update() {
    assert(!applied_ && "update() while EMA weights are applied");
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const tensor::Tensor& live = params_[i].value();
        tensor::Tensor& avg = shadow_[i];
        for (int j = 0; j < avg.size(); ++j) {
            avg[j] = decay_ * avg[j] + (1.0f - decay_) * live[j];
        }
    }
}

void Ema::apply() {
    assert(!applied_);
    backup_.clear();
    backup_.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        backup_.push_back(params_[i].value());
        params_[i].mutable_value() = shadow_[i];
    }
    applied_ = true;
}

void Ema::restore() {
    assert(applied_);
    for (std::size_t i = 0; i < params_.size(); ++i) {
        params_[i].mutable_value() = backup_[i];
    }
    backup_.clear();
    applied_ = false;
}

}  // namespace aero::nn
