#pragma once
// Tape-based reverse-mode automatic differentiation.
//
// `Var` is a cheap handle onto a shared graph node holding a forward
// `Tensor` value and (after backward()) its gradient. Ops are free
// functions that build the graph; `backward()` runs a topologically
// ordered sweep accumulating gradients into every node that requires
// them. Leaf nodes (parameters) persist across steps: the optimizer
// reads `grad()` and the training loop calls `zero_grad()`.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace aero::autograd {

using tensor::Tensor;

struct Node {
    Tensor value;
    Tensor grad;  ///< empty until first accumulation
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    /// Propagates this node's accumulated gradient into its parents.
    std::function<void(const Tensor& upstream)> backprop;

    /// Adds `delta` into `grad`, allocating zeros on first touch.
    void accumulate(const Tensor& delta);
};

class Var {
public:
    Var() = default;

    /// Trainable leaf (parameter).
    static Var param(Tensor value);
    /// Non-trainable leaf (input data / constants).
    static Var constant(Tensor value);

    bool defined() const { return node_ != nullptr; }
    const Tensor& value() const { return node_->value; }
    Tensor& mutable_value() { return node_->value; }
    /// Gradient; empty tensor when never accumulated.
    const Tensor& grad() const { return node_->grad; }
    bool requires_grad() const { return node_ && node_->requires_grad; }

    /// Clears the stored gradient (for leaves between optimizer steps).
    void zero_grad();

    /// Reverse-mode sweep seeded with ones at this node. Typically called
    /// on a scalar loss.
    void backward() const;

    /// Graph-construction access for op implementations.
    const std::shared_ptr<Node>& node() const { return node_; }

    /// Builds an interior node. `backprop` receives the node's upstream
    /// gradient and must call accumulate() on the captured parents.
    static Var make(Tensor value, std::vector<Var> parents,
                    std::function<void(const Tensor&)> backprop);

private:
    explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}
    std::shared_ptr<Node> node_;
};

// ---- arithmetic -------------------------------------------------------------

Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var scale(const Var& a, float s);
Var add_scalar(const Var& a, float s);

// ---- linear algebra ---------------------------------------------------------

Var matmul(const Var& a, const Var& b);
Var transpose2d(const Var& a);
Var add_row_bias(const Var& a, const Var& bias);

// ---- activations ------------------------------------------------------------

Var relu(const Var& a);
Var silu(const Var& a);
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var softmax_rows(const Var& a);

// ---- convolution / spatial --------------------------------------------------

Var conv2d(const Var& input, const Var& weight, const Var& bias,
           const tensor::Conv2dSpec& spec);
Var upsample_nearest2x(const Var& input);
/// Adds per-sample per-channel bias [N,C] to a feature map [N,C,H,W].
Var add_spatial_bias(const Var& x, const Var& bias);
Var avg_pool2x(const Var& input);
Var global_avg_pool(const Var& input);

// ---- shape ------------------------------------------------------------------

Var reshape(const Var& a, std::vector<int> shape);
Var concat(const std::vector<Var>& parts, int axis);
Var slice(const Var& a, int axis, int start, int stop);

// ---- normalisation ----------------------------------------------------------

/// Row-wise layer norm of [m,n] with per-column gamma/beta ([n]).
Var layer_norm_rows(const Var& x, const Var& gamma, const Var& beta,
                    float eps = 1e-5f);
/// Group norm of [N,C,H,W]; gamma/beta are per-channel ([C]).
Var group_norm(const Var& x, int groups, const Var& gamma, const Var& beta,
               float eps = 1e-5f);

// ---- lookup -----------------------------------------------------------------

/// Rows of `table` ([V,d]) gathered by `indices` -> [indices.size(), d].
Var embedding(const Var& table, const std::vector<int>& indices);

// ---- reductions & losses ----------------------------------------------------

/// Mean of all elements -> scalar Var (shape [1]).
Var mean_all(const Var& a);
/// Sum of all elements -> scalar Var (shape [1]).
Var sum_all(const Var& a);
/// Mean squared error between same-shaped tensors -> scalar Var.
Var mse_loss(const Var& prediction, const Var& target);
/// Mean softmax cross-entropy of [m,n] logits against integer targets.
Var cross_entropy_rows(const Var& logits, const std::vector<int>& targets);

}  // namespace aero::autograd
