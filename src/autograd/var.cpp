#include "autograd/var.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "mem/arena.hpp"
#include "tensor/ops.hpp"

namespace aero::autograd {

namespace ops = aero::tensor;

void Node::accumulate(const Tensor& delta) {
    if (!requires_grad) return;
    if (grad.empty()) {
        grad = Tensor(value.shape());
    }
    assert(grad.same_shape(delta));
    float* g = grad.data();
    const float* d = delta.data();
    for (int i = 0; i < grad.size(); ++i) g[i] += d[i];
}

Var Var::param(Tensor value) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = true;
    return Var(std::move(node));
}

Var Var::constant(Tensor value) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = false;
    return Var(std::move(node));
}

void Var::zero_grad() {
    if (node_) node_->grad = Tensor();
}

Var Var::make(Tensor value, std::vector<Var> parents,
              std::function<void(const Tensor&)> backprop) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    for (const Var& p : parents) {
        node->parents.push_back(p.node());
        node->requires_grad = node->requires_grad || p.requires_grad();
    }
    if (node->requires_grad) node->backprop = std::move(backprop);
    return Var(std::move(node));
}

void Var::backward() const {
    assert(node_);
    // Topological order by iterative DFS.
    std::vector<Node*> order;
    std::unordered_set<Node*> visited;
    struct Frame {
        Node* node;
        std::size_t next_parent;
    };
    std::vector<Frame> stack;
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
    while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next_parent < frame.node->parents.size()) {
            Node* parent = frame.node->parents[frame.next_parent++].get();
            if (parent->requires_grad && visited.insert(parent).second) {
                stack.push_back({parent, 0});
            }
        } else {
            order.push_back(frame.node);
            stack.pop_back();
        }
    }

    node_->accumulate(Tensor::ones(node_->value.shape()));
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node* node = *it;
        if (node->backprop && !node->grad.empty()) {
            node->backprop(node->grad);
        }
    }
}

// ---- arithmetic -------------------------------------------------------------

Var add(const Var& a, const Var& b) {
    auto an = a.node();
    auto bn = b.node();
    return Var::make(ops::add(a.value(), b.value()), {a, b},
                     [an, bn](const Tensor& g) {
                         an->accumulate(g);
                         bn->accumulate(g);
                     });
}

Var sub(const Var& a, const Var& b) {
    auto an = a.node();
    auto bn = b.node();
    return Var::make(ops::sub(a.value(), b.value()), {a, b},
                     [an, bn](const Tensor& g) {
                         an->accumulate(g);
                         bn->accumulate(ops::neg(g));
                     });
}

Var mul(const Var& a, const Var& b) {
    auto an = a.node();
    auto bn = b.node();
    return Var::make(ops::mul(a.value(), b.value()), {a, b},
                     [an, bn](const Tensor& g) {
                         an->accumulate(ops::mul(g, bn->value));
                         bn->accumulate(ops::mul(g, an->value));
                     });
}

Var scale(const Var& a, float s) {
    auto an = a.node();
    return Var::make(ops::scale(a.value(), s), {a}, [an, s](const Tensor& g) {
        an->accumulate(ops::scale(g, s));
    });
}

Var add_scalar(const Var& a, float s) {
    auto an = a.node();
    return Var::make(ops::add_scalar(a.value(), s), {a},
                     [an](const Tensor& g) { an->accumulate(g); });
}

// ---- linear algebra ---------------------------------------------------------

Var matmul(const Var& a, const Var& b) {
    auto an = a.node();
    auto bn = b.node();
    return Var::make(ops::matmul(a.value(), b.value()), {a, b},
                     [an, bn](const Tensor& g) {
                         an->accumulate(ops::matmul_nt(g, bn->value));
                         bn->accumulate(ops::matmul_tn(an->value, g));
                     });
}

Var transpose2d(const Var& a) {
    auto an = a.node();
    return Var::make(ops::transpose2d(a.value()), {a}, [an](const Tensor& g) {
        an->accumulate(ops::transpose2d(g));
    });
}

Var add_row_bias(const Var& a, const Var& bias) {
    auto an = a.node();
    auto bn = bias.node();
    return Var::make(ops::add_row_bias(a.value(), bias.value()), {a, bias},
                     [an, bn](const Tensor& g) {
                         an->accumulate(g);
                         bn->accumulate(ops::sum_rows(g));
                     });
}

// ---- activations ------------------------------------------------------------

Var relu(const Var& a) {
    auto an = a.node();
    return Var::make(ops::relu(a.value()), {a}, [an](const Tensor& g) {
        an->accumulate(ops::relu_backward(g, an->value));
    });
}

Var silu(const Var& a) {
    auto an = a.node();
    return Var::make(ops::silu(a.value()), {a}, [an](const Tensor& g) {
        an->accumulate(ops::silu_backward(g, an->value));
    });
}

Var tanh(const Var& a) {
    auto an = a.node();
    Tensor out = ops::tanh(a.value());
    Tensor out_copy = out;
    return Var::make(std::move(out), {a},
                     [an, out_copy](const Tensor& g) {
                         an->accumulate(ops::tanh_backward(g, out_copy));
                     });
}

Var sigmoid(const Var& a) {
    auto an = a.node();
    Tensor out = ops::sigmoid(a.value());
    Tensor out_copy = out;
    return Var::make(std::move(out), {a},
                     [an, out_copy](const Tensor& g) {
                         an->accumulate(ops::sigmoid_backward(g, out_copy));
                     });
}

Var softmax_rows(const Var& a) {
    auto an = a.node();
    Tensor out = ops::softmax_rows(a.value());
    Tensor out_copy = out;
    return Var::make(std::move(out), {a},
                     [an, out_copy](const Tensor& g) {
                         an->accumulate(
                             ops::softmax_rows_backward(g, out_copy));
                     });
}

// ---- convolution / spatial --------------------------------------------------

Var conv2d(const Var& input, const Var& weight, const Var& bias,
           const tensor::Conv2dSpec& spec) {
    auto in = input.node();
    auto wn = weight.node();
    auto bn = bias.defined() ? bias.node() : nullptr;
    const Tensor empty_bias;
    Tensor out = ops::conv2d(input.value(), weight.value(),
                             bn ? bn->value : empty_bias, spec);
    std::vector<Var> parents{input, weight};
    if (bn) parents.push_back(bias);
    return Var::make(std::move(out), std::move(parents),
                     [in, wn, bn, spec](const Tensor& g) {
                         if (in->requires_grad) {
                             in->accumulate(ops::conv2d_backward_input(
                                 g, wn->value, in->value.shape(), spec));
                         }
                         if (wn->requires_grad) {
                             wn->accumulate(ops::conv2d_backward_weight(
                                 g, in->value, wn->value.shape(), spec));
                         }
                         if (bn && bn->requires_grad) {
                             bn->accumulate(ops::conv2d_backward_bias(g));
                         }
                     });
}

Var upsample_nearest2x(const Var& input) {
    auto in = input.node();
    return Var::make(ops::upsample_nearest2x(input.value()), {input},
                     [in](const Tensor& g) {
                         in->accumulate(ops::upsample_nearest2x_backward(g));
                     });
}

Var add_spatial_bias(const Var& x, const Var& bias) {
    auto xn = x.node();
    auto bn = bias.node();
    return Var::make(ops::add_spatial_bias(x.value(), bias.value()), {x, bias},
                     [xn, bn](const Tensor& g) {
                         xn->accumulate(g);
                         if (bn->requires_grad) {
                             bn->accumulate(
                                 ops::add_spatial_bias_backward_bias(g));
                         }
                     });
}

Var avg_pool2x(const Var& input) {
    auto in = input.node();
    return Var::make(ops::avg_pool2x(input.value()), {input},
                     [in](const Tensor& g) {
                         in->accumulate(ops::avg_pool2x_backward(g));
                     });
}

Var global_avg_pool(const Var& input) {
    auto in = input.node();
    return Var::make(ops::global_avg_pool(input.value()), {input},
                     [in](const Tensor& g) {
                         in->accumulate(ops::global_avg_pool_backward(
                             g, in->value.shape()));
                     });
}

// ---- shape ------------------------------------------------------------------

Var reshape(const Var& a, std::vector<int> shape) {
    auto an = a.node();
    std::vector<int> original = a.value().shape();
    return Var::make(a.value().reshaped(std::move(shape)), {a},
                     [an, original](const Tensor& g) {
                         an->accumulate(g.reshaped(original));
                     });
}

Var concat(const std::vector<Var>& parts, int axis) {
    std::vector<Tensor> values;
    std::vector<std::vector<int>> shapes;
    std::vector<std::shared_ptr<Node>> nodes;
    values.reserve(parts.size());
    for (const Var& p : parts) {
        values.push_back(p.value());
        shapes.push_back(p.value().shape());
        nodes.push_back(p.node());
    }
    return Var::make(ops::concat(values, axis), parts,
                     [nodes, shapes, axis](const Tensor& g) {
                         std::vector<Tensor> grads =
                             ops::concat_backward(g, shapes, axis);
                         for (std::size_t i = 0; i < nodes.size(); ++i) {
                             nodes[i]->accumulate(grads[i]);
                         }
                     });
}

Var slice(const Var& a, int axis, int start, int stop) {
    auto an = a.node();
    std::vector<int> input_shape = a.value().shape();
    return Var::make(ops::slice(a.value(), axis, start, stop), {a},
                     [an, input_shape, axis, start](const Tensor& g) {
                         an->accumulate(ops::slice_backward(g, input_shape,
                                                            axis, start));
                     });
}

// ---- normalisation ----------------------------------------------------------

Var layer_norm_rows(const Var& x, const Var& gamma, const Var& beta,
                    float eps) {
    assert(x.value().rank() == 2);
    const int m = x.value().dim(0);
    const int n = x.value().dim(1);
    assert(gamma.value().size() == n && beta.value().size() == n);

    Tensor normalized({m, n});
    mem::Buffer inv_std(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        const float* row = x.value().data() + i * n;
        float mean = 0.0f;
        for (int j = 0; j < n; ++j) mean += row[j];
        mean /= static_cast<float>(n);
        float var = 0.0f;
        for (int j = 0; j < n; ++j) {
            const float d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<float>(n);
        const float inv = 1.0f / std::sqrt(var + eps);
        inv_std[static_cast<std::size_t>(i)] = inv;
        float* out_row = normalized.data() + i * n;
        for (int j = 0; j < n; ++j) out_row[j] = (row[j] - mean) * inv;
    }

    Tensor out({m, n});
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            out[i * n + j] =
                normalized[i * n + j] * gamma.value()[j] + beta.value()[j];
        }
    }

    auto xn = x.node();
    auto gn = gamma.node();
    auto bn = beta.node();
    return Var::make(
        std::move(out), {x, gamma, beta},
        [xn, gn, bn, normalized, inv_std, m, n](const Tensor& g) {
            if (gn->requires_grad) {
                Tensor dgamma({n});
                for (int i = 0; i < m; ++i) {
                    for (int j = 0; j < n; ++j) {
                        dgamma[j] += g[i * n + j] * normalized[i * n + j];
                    }
                }
                gn->accumulate(dgamma);
            }
            if (bn->requires_grad) {
                bn->accumulate(ops::sum_rows(g));
            }
            if (xn->requires_grad) {
                Tensor dx({m, n});
                for (int i = 0; i < m; ++i) {
                    // dxhat = g * gamma; dx = (dxhat - mean(dxhat)
                    //   - xhat * mean(dxhat * xhat)) * inv_std
                    float mean_dxhat = 0.0f;
                    float mean_dxhat_xhat = 0.0f;
                    for (int j = 0; j < n; ++j) {
                        const float dxhat = g[i * n + j] * gn->value[j];
                        mean_dxhat += dxhat;
                        mean_dxhat_xhat += dxhat * normalized[i * n + j];
                    }
                    mean_dxhat /= static_cast<float>(n);
                    mean_dxhat_xhat /= static_cast<float>(n);
                    for (int j = 0; j < n; ++j) {
                        const float dxhat = g[i * n + j] * gn->value[j];
                        dx[i * n + j] =
                            (dxhat - mean_dxhat -
                             normalized[i * n + j] * mean_dxhat_xhat) *
                            inv_std[static_cast<std::size_t>(i)];
                    }
                }
                xn->accumulate(dx);
            }
        });
}

Var group_norm(const Var& x, int groups, const Var& gamma, const Var& beta,
               float eps) {
    assert(x.value().rank() == 4);
    const int n = x.value().dim(0);
    const int c = x.value().dim(1);
    const int h = x.value().dim(2);
    const int w = x.value().dim(3);
    assert(c % groups == 0);
    assert(gamma.value().size() == c && beta.value().size() == c);
    const int cpg = c / groups;          // channels per group
    const int group_size = cpg * h * w;  // elements per normalisation group

    Tensor normalized(x.value().shape());
    mem::Buffer inv_std(static_cast<std::size_t>(n * groups));

    for (int b = 0; b < n; ++b) {
        for (int g0 = 0; g0 < groups; ++g0) {
            const float* base =
                x.value().data() + ((b * c + g0 * cpg) * h) * w;
            float mean = 0.0f;
            for (int i = 0; i < group_size; ++i) mean += base[i];
            mean /= static_cast<float>(group_size);
            float var = 0.0f;
            for (int i = 0; i < group_size; ++i) {
                const float d = base[i] - mean;
                var += d * d;
            }
            var /= static_cast<float>(group_size);
            const float inv = 1.0f / std::sqrt(var + eps);
            inv_std[static_cast<std::size_t>(b * groups + g0)] = inv;
            float* out_base =
                normalized.data() + ((b * c + g0 * cpg) * h) * w;
            for (int i = 0; i < group_size; ++i) {
                out_base[i] = (base[i] - mean) * inv;
            }
        }
    }

    Tensor out(x.value().shape());
    const int spatial = h * w;
    for (int b = 0; b < n; ++b) {
        for (int ch = 0; ch < c; ++ch) {
            const float* src = normalized.data() + (b * c + ch) * spatial;
            float* dst = out.data() + (b * c + ch) * spatial;
            const float gm = gamma.value()[ch];
            const float bt = beta.value()[ch];
            for (int s = 0; s < spatial; ++s) dst[s] = src[s] * gm + bt;
        }
    }

    auto xn = x.node();
    auto gn = gamma.node();
    auto bn = beta.node();
    return Var::make(
        std::move(out), {x, gamma, beta},
        [xn, gn, bn, normalized, inv_std, n, c, groups, cpg, spatial,
         group_size](const Tensor& g) {
            if (gn->requires_grad || bn->requires_grad) {
                Tensor dgamma({c});
                Tensor dbeta({c});
                for (int b = 0; b < n; ++b) {
                    for (int ch = 0; ch < c; ++ch) {
                        const float* gp = g.data() + (b * c + ch) * spatial;
                        const float* xh =
                            normalized.data() + (b * c + ch) * spatial;
                        float dg = 0.0f;
                        float db = 0.0f;
                        for (int s = 0; s < spatial; ++s) {
                            dg += gp[s] * xh[s];
                            db += gp[s];
                        }
                        dgamma[ch] += dg;
                        dbeta[ch] += db;
                    }
                }
                if (gn->requires_grad) gn->accumulate(dgamma);
                if (bn->requires_grad) bn->accumulate(dbeta);
            }
            if (xn->requires_grad) {
                Tensor dx(xn->value.shape());
                for (int b = 0; b < n; ++b) {
                    for (int g0 = 0; g0 < groups; ++g0) {
                        const int offset = (b * c + g0 * cpg) * spatial;
                        float mean_dxhat = 0.0f;
                        float mean_dxhat_xhat = 0.0f;
                        for (int ci = 0; ci < cpg; ++ci) {
                            const int ch = g0 * cpg + ci;
                            const float gm = gn->value[ch];
                            const float* gp =
                                g.data() + (b * c + ch) * spatial;
                            const float* xh =
                                normalized.data() + (b * c + ch) * spatial;
                            for (int s = 0; s < spatial; ++s) {
                                const float dxhat = gp[s] * gm;
                                mean_dxhat += dxhat;
                                mean_dxhat_xhat += dxhat * xh[s];
                            }
                        }
                        mean_dxhat /= static_cast<float>(group_size);
                        mean_dxhat_xhat /= static_cast<float>(group_size);
                        const float inv =
                            inv_std[static_cast<std::size_t>(b * groups + g0)];
                        for (int ci = 0; ci < cpg; ++ci) {
                            const int ch = g0 * cpg + ci;
                            const float gm = gn->value[ch];
                            const float* gp =
                                g.data() + (b * c + ch) * spatial;
                            const float* xh =
                                normalized.data() + (b * c + ch) * spatial;
                            float* dxp = dx.data() + offset +
                                         ci * spatial;
                            for (int s = 0; s < spatial; ++s) {
                                const float dxhat = gp[s] * gm;
                                dxp[s] = (dxhat - mean_dxhat -
                                          xh[s] * mean_dxhat_xhat) *
                                         inv;
                            }
                        }
                    }
                }
                xn->accumulate(dx);
            }
        });
}

// ---- lookup -----------------------------------------------------------------

Var embedding(const Var& table, const std::vector<int>& indices) {
    assert(table.value().rank() == 2);
    const int v = table.value().dim(0);
    const int d = table.value().dim(1);
    const int m = static_cast<int>(indices.size());
    Tensor out({m, d});
    for (int i = 0; i < m; ++i) {
        assert(indices[static_cast<std::size_t>(i)] >= 0 &&
               indices[static_cast<std::size_t>(i)] < v);
        const float* src =
            table.value().data() + indices[static_cast<std::size_t>(i)] * d;
        float* dst = out.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    auto tn = table.node();
    return Var::make(std::move(out), {table},
                     [tn, indices, d](const Tensor& g) {
                         Tensor dt(tn->value.shape());
                         for (std::size_t i = 0; i < indices.size(); ++i) {
                             const float* src =
                                 g.data() + static_cast<int>(i) * d;
                             float* dst = dt.data() + indices[i] * d;
                             for (int j = 0; j < d; ++j) dst[j] += src[j];
                         }
                         tn->accumulate(dt);
                     });
}

// ---- reductions & losses ----------------------------------------------------

Var mean_all(const Var& a) {
    auto an = a.node();
    const float inv = 1.0f / static_cast<float>(a.value().size());
    Tensor out({1});
    out[0] = ops::mean_all(a.value());
    return Var::make(std::move(out), {a}, [an, inv](const Tensor& g) {
        an->accumulate(Tensor::full(an->value.shape(), g[0] * inv));
    });
}

Var sum_all(const Var& a) {
    auto an = a.node();
    Tensor out({1});
    out[0] = ops::sum_all(a.value());
    return Var::make(std::move(out), {a}, [an](const Tensor& g) {
        an->accumulate(Tensor::full(an->value.shape(), g[0]));
    });
}

Var mse_loss(const Var& prediction, const Var& target) {
    assert(prediction.value().same_shape(target.value()));
    auto pn = prediction.node();
    auto tn = target.node();
    const Tensor diff = ops::sub(prediction.value(), target.value());
    Tensor out({1});
    double acc = 0.0;
    for (float v : diff) acc += static_cast<double>(v) * v;
    out[0] = static_cast<float>(acc / diff.size());
    const float inv = 2.0f / static_cast<float>(diff.size());
    return Var::make(std::move(out), {prediction, target},
                     [pn, tn, diff, inv](const Tensor& g) {
                         Tensor d = ops::scale(diff, g[0] * inv);
                         pn->accumulate(d);
                         if (tn->requires_grad) tn->accumulate(ops::neg(d));
                     });
}

Var cross_entropy_rows(const Var& logits, const std::vector<int>& targets) {
    assert(logits.value().rank() == 2);
    const int m = logits.value().dim(0);
    const int n = logits.value().dim(1);
    assert(static_cast<int>(targets.size()) == m);

    const Tensor probs = ops::softmax_rows(logits.value());
    Tensor out({1});
    double loss = 0.0;
    for (int i = 0; i < m; ++i) {
        const float p =
            std::max(probs[i * n + targets[static_cast<std::size_t>(i)]],
                     1e-12f);
        loss -= std::log(static_cast<double>(p));
    }
    out[0] = static_cast<float>(loss / m);

    auto ln = logits.node();
    return Var::make(std::move(out), {logits},
                     [ln, probs, targets, m, n](const Tensor& g) {
                         Tensor dl({m, n});
                         const float inv = g[0] / static_cast<float>(m);
                         for (int i = 0; i < m; ++i) {
                             for (int j = 0; j < n; ++j) {
                                 float v = probs[i * n + j];
                                 if (j == targets[static_cast<std::size_t>(i)]) {
                                     v -= 1.0f;
                                 }
                                 dl[i * n + j] = v * inv;
                             }
                         }
                         ln->accumulate(dl);
                     });
}

}  // namespace aero::autograd
