#include "image/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>

namespace aero::image {

Color lerp(const Color& a, const Color& b, float t) {
    return {a.r + (b.r - a.r) * t, a.g + (b.g - a.g) * t,
            a.b + (b.b - a.b) * t};
}

Color scale(const Color& c, float s) { return {c.r * s, c.g * s, c.b * s}; }

Image::Image(int width, int height)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width * height * 3), 0.0f) {
    assert(width > 0 && height > 0);
}

Image::Image(int width, int height, const Color& fill) : Image(width, height) {
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) set_pixel(x, y, fill);
    }
}

float& Image::at(int x, int y, int channel) {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(index(x, y, channel))];
}

float Image::at(int x, int y, int channel) const {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(index(x, y, channel))];
}

Color Image::pixel(int x, int y) const {
    return {at(x, y, 0), at(x, y, 1), at(x, y, 2)};
}

void Image::set_pixel(int x, int y, const Color& c) {
    at(x, y, 0) = c.r;
    at(x, y, 1) = c.g;
    at(x, y, 2) = c.b;
}

void Image::blend_pixel(int x, int y, const Color& c, float alpha) {
    at(x, y, 0) += (c.r - at(x, y, 0)) * alpha;
    at(x, y, 1) += (c.g - at(x, y, 1)) * alpha;
    at(x, y, 2) += (c.b - at(x, y, 2)) * alpha;
}

void Image::clamp01() {
    for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

float Image::mean_luminance() const {
    if (data_.empty()) return 0.0f;
    double acc = 0.0;
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const Color c = pixel(x, y);
            acc += 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
        }
    }
    return static_cast<float>(acc / (width_ * height_));
}

tensor::Tensor Image::to_tensor_chw() const {
    tensor::Tensor t({3, height_, width_});
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < height_; ++y) {
            for (int x = 0; x < width_; ++x) {
                t[(c * height_ + y) * width_ + x] = at(x, y, c) * 2.0f - 1.0f;
            }
        }
    }
    return t;
}

Image Image::from_tensor_chw(const tensor::Tensor& chw) {
    assert(chw.rank() == 3 && chw.dim(0) == 3);
    const int h = chw.dim(1);
    const int w = chw.dim(2);
    Image img(w, h);
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                img.at(x, y, c) = std::clamp(
                    (chw[(c * h + y) * w + x] + 1.0f) * 0.5f, 0.0f, 1.0f);
            }
        }
    }
    return img;
}

bool write_ppm(const Image& img, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
    std::vector<unsigned char> row(static_cast<std::size_t>(img.width()) * 3);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            for (int c = 0; c < 3; ++c) {
                const float v = std::clamp(img.at(x, y, c), 0.0f, 1.0f);
                row[static_cast<std::size_t>(x * 3 + c)] =
                    static_cast<unsigned char>(std::lround(v * 255.0f));
            }
        }
        out.write(reinterpret_cast<const char*>(row.data()),
                  static_cast<std::streamsize>(row.size()));
    }
    return static_cast<bool>(out);
}

bool read_ppm(const std::string& path, Image* out_img) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::string magic;
    in >> magic;
    if (magic != "P6") return false;
    int w = 0;
    int h = 0;
    int max_v = 0;
    in >> w >> h >> max_v;
    if (!in || w <= 0 || h <= 0 || max_v != 255) return false;
    in.get();  // single whitespace after header
    Image img(w, h);
    std::vector<unsigned char> raw(static_cast<std::size_t>(w) * h * 3);
    in.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!in) return false;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            for (int c = 0; c < 3; ++c) {
                img.at(x, y, c) =
                    static_cast<float>(raw[static_cast<std::size_t>(
                        (y * w + x) * 3 + c)]) /
                    255.0f;
            }
        }
    }
    *out_img = std::move(img);
    return true;
}

Image resize_bilinear(const Image& src, int new_width, int new_height) {
    assert(new_width > 0 && new_height > 0);
    Image dst(new_width, new_height);
    const float sx = static_cast<float>(src.width()) / new_width;
    const float sy = static_cast<float>(src.height()) / new_height;
    for (int y = 0; y < new_height; ++y) {
        const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
        const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                                  src.height() - 1);
        const int y1 = std::min(y0 + 1, src.height() - 1);
        const float ty = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
        for (int x = 0; x < new_width; ++x) {
            const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
            const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0,
                                      src.width() - 1);
            const int x1 = std::min(x0 + 1, src.width() - 1);
            const float tx =
                std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
            for (int c = 0; c < 3; ++c) {
                const float top = src.at(x0, y0, c) +
                                  (src.at(x1, y0, c) - src.at(x0, y0, c)) * tx;
                const float bot = src.at(x0, y1, c) +
                                  (src.at(x1, y1, c) - src.at(x0, y1, c)) * tx;
                dst.at(x, y, c) = top + (bot - top) * ty;
            }
        }
    }
    return dst;
}

Image crop(const Image& src, int x, int y, int w, int h) {
    assert(w > 0 && h > 0);
    Image dst(w, h);
    for (int dy = 0; dy < h; ++dy) {
        const int sy = std::clamp(y + dy, 0, src.height() - 1);
        for (int dx = 0; dx < w; ++dx) {
            const int sx = std::clamp(x + dx, 0, src.width() - 1);
            dst.set_pixel(dx, dy, src.pixel(sx, sy));
        }
    }
    return dst;
}

void fill_rect(Image& img, int x, int y, int w, int h, const Color& c) {
    const int x0 = std::max(x, 0);
    const int y0 = std::max(y, 0);
    const int x1 = std::min(x + w, img.width());
    const int y1 = std::min(y + h, img.height());
    for (int yy = y0; yy < y1; ++yy) {
        for (int xx = x0; xx < x1; ++xx) img.set_pixel(xx, yy, c);
    }
}

void fill_oriented_rect(Image& img, float cx, float cy, float w, float h,
                        float angle, const Color& c, float alpha) {
    const float cos_a = std::cos(angle);
    const float sin_a = std::sin(angle);
    const float half_diag = 0.5f * std::sqrt(w * w + h * h);
    const int x0 = std::max(static_cast<int>(std::floor(cx - half_diag)), 0);
    const int y0 = std::max(static_cast<int>(std::floor(cy - half_diag)), 0);
    const int x1 =
        std::min(static_cast<int>(std::ceil(cx + half_diag)) + 1, img.width());
    const int y1 = std::min(static_cast<int>(std::ceil(cy + half_diag)) + 1,
                            img.height());
    for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
            // Rotate the pixel centre into the rectangle's frame.
            const float dx = static_cast<float>(x) + 0.5f - cx;
            const float dy = static_cast<float>(y) + 0.5f - cy;
            const float lx = dx * cos_a + dy * sin_a;
            const float ly = -dx * sin_a + dy * cos_a;
            if (std::abs(lx) <= w * 0.5f && std::abs(ly) <= h * 0.5f) {
                img.blend_pixel(x, y, c, alpha);
            }
        }
    }
}

void fill_disk(Image& img, float cx, float cy, float radius, const Color& c,
               float alpha) {
    const int x0 = std::max(static_cast<int>(std::floor(cx - radius)), 0);
    const int y0 = std::max(static_cast<int>(std::floor(cy - radius)), 0);
    const int x1 =
        std::min(static_cast<int>(std::ceil(cx + radius)) + 1, img.width());
    const int y1 =
        std::min(static_cast<int>(std::ceil(cy + radius)) + 1, img.height());
    const float r2 = radius * radius;
    for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
            const float dx = static_cast<float>(x) + 0.5f - cx;
            const float dy = static_cast<float>(y) + 0.5f - cy;
            if (dx * dx + dy * dy <= r2) img.blend_pixel(x, y, c, alpha);
        }
    }
}

void draw_line(Image& img, float x0, float y0, float x1, float y1,
               float thickness, const Color& c) {
    const float dx = x1 - x0;
    const float dy = y1 - y0;
    const float length = std::sqrt(dx * dx + dy * dy);
    const int steps = std::max(1, static_cast<int>(length * 2.0f));
    const float radius = std::max(thickness * 0.5f, 0.5f);
    for (int i = 0; i <= steps; ++i) {
        const float t = static_cast<float>(i) / static_cast<float>(steps);
        fill_disk(img, x0 + dx * t, y0 + dy * t, radius, c);
    }
}

Image box_blur(const Image& src, int radius) {
    if (radius <= 0) return src;
    Image tmp(src.width(), src.height());
    Image dst(src.width(), src.height());
    const float norm = 1.0f / static_cast<float>(2 * radius + 1);
    // Horizontal pass.
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            float acc[3] = {0.0f, 0.0f, 0.0f};
            for (int k = -radius; k <= radius; ++k) {
                const int xx = std::clamp(x + k, 0, src.width() - 1);
                for (int c = 0; c < 3; ++c) acc[c] += src.at(xx, y, c);
            }
            for (int c = 0; c < 3; ++c) tmp.at(x, y, c) = acc[c] * norm;
        }
    }
    // Vertical pass.
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            float acc[3] = {0.0f, 0.0f, 0.0f};
            for (int k = -radius; k <= radius; ++k) {
                const int yy = std::clamp(y + k, 0, src.height() - 1);
                for (int c = 0; c < 3; ++c) acc[c] += tmp.at(x, yy, c);
            }
            for (int c = 0; c < 3; ++c) dst.at(x, y, c) = acc[c] * norm;
        }
    }
    return dst;
}

void add_gaussian_noise(Image& img, util::Rng& rng, float stddev) {
    for (float& v : img.data()) {
        v += static_cast<float>(rng.normal(0.0, stddev));
    }
    img.clamp01();
}

void adjust_tone(Image& img, const Color& gain, const Color& bias) {
    for (std::size_t i = 0; i < img.data().size(); i += 3) {
        img.data()[i] = img.data()[i] * gain.r + bias.r;
        img.data()[i + 1] = img.data()[i + 1] * gain.g + bias.g;
        img.data()[i + 2] = img.data()[i + 2] * gain.b + bias.b;
    }
    img.clamp01();
}

double psnr(const Image& a, const Image& b) {
    assert(a.width() == b.width() && a.height() == b.height());
    double mse = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        const double d = static_cast<double>(a.data()[i]) - b.data()[i];
        mse += d * d;
    }
    mse /= static_cast<double>(a.data().size());
    if (mse <= 1e-12) return 99.0;  // identical images: cap
    return 10.0 * std::log10(1.0 / mse);
}

}  // namespace aero::image
