#pragma once
// Geometric image transforms with matching annotation transforms --
// the augmentation toolkit (horizontal/vertical flips, quarter-turn
// rotations) used to expand detector training data without re-rendering.

#include "image/image.hpp"

namespace aero::image {

/// Mirror left-right.
Image flip_horizontal(const Image& src);
/// Mirror top-bottom.
Image flip_vertical(const Image& src);
/// Rotate 90 degrees clockwise (width and height swap).
Image rotate90_cw(const Image& src);

/// Axis-aligned box (x, y, w, h) transforms matching the image ops.
struct Box {
    float x = 0.0f;
    float y = 0.0f;
    float w = 0.0f;
    float h = 0.0f;
};

Box flip_box_horizontal(const Box& box, int image_width);
Box flip_box_vertical(const Box& box, int image_height);
/// Box transform matching rotate90_cw on an image of the given size.
Box rotate_box90_cw(const Box& box, int image_width, int image_height);

}  // namespace aero::image
