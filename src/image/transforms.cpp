#include "image/transforms.hpp"

namespace aero::image {

Image flip_horizontal(const Image& src) {
    Image dst(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            dst.set_pixel(src.width() - 1 - x, y, src.pixel(x, y));
        }
    }
    return dst;
}

Image flip_vertical(const Image& src) {
    Image dst(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            dst.set_pixel(x, src.height() - 1 - y, src.pixel(x, y));
        }
    }
    return dst;
}

Image rotate90_cw(const Image& src) {
    Image dst(src.height(), src.width());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            // (x, y) -> (H - 1 - y, x)
            dst.set_pixel(src.height() - 1 - y, x, src.pixel(x, y));
        }
    }
    return dst;
}

Box flip_box_horizontal(const Box& box, int image_width) {
    return {static_cast<float>(image_width) - box.x - box.w, box.y, box.w,
            box.h};
}

Box flip_box_vertical(const Box& box, int image_height) {
    return {box.x, static_cast<float>(image_height) - box.y - box.h, box.w,
            box.h};
}

Box rotate_box90_cw(const Box& box, int /*image_width*/, int image_height) {
    // Pixel (x, y) maps to (H - 1 - y, x); for boxes the new top-left is
    // derived from the old bottom-left corner.
    return {static_cast<float>(image_height) - box.y - box.h, box.x, box.h,
            box.w};
}

}  // namespace aero::image
