#pragma once
// Float RGB image (values nominally in [0,1]) with the raster operations
// the scene renderer and the metrics need: PPM I/O, bilinear resize,
// crops, primitive drawing (axis-aligned and oriented rectangles, disks,
// lines), blur, noise and tensor conversion.

#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace aero::image {

struct Color {
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;
};

Color lerp(const Color& a, const Color& b, float t);
Color scale(const Color& c, float s);

class Image {
public:
    Image() = default;
    /// Black image of the given size.
    Image(int width, int height);
    /// Constant-colour image.
    Image(int width, int height, const Color& fill);

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return data_.empty(); }

    float& at(int x, int y, int channel);
    float at(int x, int y, int channel) const;

    Color pixel(int x, int y) const;
    void set_pixel(int x, int y, const Color& c);
    /// Alpha-blends `c` over the existing pixel.
    void blend_pixel(int x, int y, const Color& c, float alpha);

    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    /// Clamps every channel into [0, 1].
    void clamp01();

    /// Mean of the per-pixel luminances (Rec. 601 weights).
    float mean_luminance() const;

    /// CHW float tensor in [-1, 1] (diffusion model convention).
    tensor::Tensor to_tensor_chw() const;
    /// Inverse of to_tensor_chw; clamps to [0, 1].
    static Image from_tensor_chw(const tensor::Tensor& chw);

private:
    int index(int x, int y, int channel) const {
        return (y * width_ + x) * 3 + channel;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<float> data_;  ///< interleaved RGB, row-major
};

// ---- I/O --------------------------------------------------------------------

/// Binary PPM (P6), 8-bit. Returns false on I/O failure.
bool write_ppm(const Image& img, const std::string& path);
/// Reads a binary PPM written by write_ppm (or any 8-bit P6).
bool read_ppm(const std::string& path, Image* out);

// ---- resampling -------------------------------------------------------------

Image resize_bilinear(const Image& src, int new_width, int new_height);
/// Copies the clamped region [x, x+w) x [y, y+h).
Image crop(const Image& src, int x, int y, int w, int h);

// ---- drawing ----------------------------------------------------------------

void fill_rect(Image& img, int x, int y, int w, int h, const Color& c);
/// Rectangle centred at (cx, cy), rotated by `angle` radians, alpha-blended.
void fill_oriented_rect(Image& img, float cx, float cy, float w, float h,
                        float angle, const Color& c, float alpha = 1.0f);
void fill_disk(Image& img, float cx, float cy, float radius, const Color& c,
               float alpha = 1.0f);
void draw_line(Image& img, float x0, float y0, float x1, float y1,
               float thickness, const Color& c);

// ---- filters ----------------------------------------------------------------

/// Separable box blur with the given radius (radius 0 returns a copy).
Image box_blur(const Image& src, int radius);
/// Adds i.i.d. Gaussian noise to every channel.
void add_gaussian_noise(Image& img, util::Rng& rng, float stddev);
/// Per-channel affine tone adjustment: v -> v * gain + bias.
void adjust_tone(Image& img, const Color& gain, const Color& bias);

// ---- metrics helpers --------------------------------------------------------

/// Peak signal-to-noise ratio in dB between same-sized images (peak = 1.0).
double psnr(const Image& a, const Image& b);

}  // namespace aero::image
