#include "scene/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace aero::scene {

namespace {

using image::Color;
using util::Rng;

constexpr float kPi = std::numbers::pi_v<float>;

/// Typical world-space footprints per class (length along heading, width).
struct Footprint {
    float length;
    float width;
};

Footprint footprint(ObjectClass cls, Rng& rng) {
    auto jitter = [&rng](float v) {
        return v * static_cast<float>(rng.uniform(0.85, 1.15));
    };
    switch (cls) {
        case ObjectClass::kPedestrian:
        case ObjectClass::kPeople:
            return {jitter(0.010f), jitter(0.010f)};
        case ObjectClass::kBicycle:
            return {jitter(0.018f), jitter(0.008f)};
        case ObjectClass::kMotor:
            return {jitter(0.020f), jitter(0.009f)};
        case ObjectClass::kTricycle:
        case ObjectClass::kAwningTricycle:
            return {jitter(0.025f), jitter(0.014f)};
        case ObjectClass::kCar:
            return {jitter(0.036f), jitter(0.018f)};
        case ObjectClass::kVan:
            return {jitter(0.042f), jitter(0.020f)};
        case ObjectClass::kTruck:
            return {jitter(0.060f), jitter(0.024f)};
        case ObjectClass::kBus:
            return {jitter(0.070f), jitter(0.025f)};
    }
    return {0.03f, 0.015f};
}

Color vehicle_color(Rng& rng) {
    // Mostly achromatic fleet colours with occasional saturated ones,
    // mirroring real traffic.
    if (rng.bernoulli(0.55)) {
        const float v = static_cast<float>(rng.uniform(0.25, 0.95));
        return {v, v, v * static_cast<float>(rng.uniform(0.95, 1.05))};
    }
    const float hue_pick = static_cast<float>(rng.uniform(0.0, 1.0));
    if (hue_pick < 0.4f) return {0.75f, 0.12f, 0.10f};  // red
    if (hue_pick < 0.7f) return {0.12f, 0.25f, 0.65f};  // blue
    if (hue_pick < 0.85f) return {0.1f, 0.45f, 0.2f};   // green
    return {0.8f, 0.6f, 0.1f};                          // yellow
}

Color pedestrian_color(Rng& rng) {
    return {static_cast<float>(rng.uniform(0.3, 0.9)),
            static_cast<float>(rng.uniform(0.2, 0.8)),
            static_cast<float>(rng.uniform(0.2, 0.9))};
}

SceneObject make_object(ObjectClass cls, float x, float y, float heading,
                        Rng& rng, bool moving) {
    SceneObject obj;
    obj.cls = cls;
    obj.x = x;
    obj.y = y;
    const Footprint fp = footprint(cls, rng);
    obj.length = fp.length;
    obj.width = fp.width;
    obj.heading = heading;
    obj.moving = moving;
    const bool is_person =
        cls == ObjectClass::kPedestrian || cls == ObjectClass::kPeople;
    obj.color = is_person ? pedestrian_color(rng) : vehicle_color(rng);
    return obj;
}

/// Places `count` vehicles along a road segment in lane positions.
void populate_road(Scene& scene, const RoadSegment& road, int count,
                   const std::vector<ObjectClass>& mix, Rng& rng) {
    const float dx = road.x1 - road.x0;
    const float dy = road.y1 - road.y0;
    const float heading = std::atan2(dy, dx);
    const float nx = -dy;  // unit-ish normal (length handled via road width)
    const float ny = dx;
    const float norm = std::sqrt(nx * nx + ny * ny);
    const float ux = norm > 0.0f ? nx / norm : 0.0f;
    const float uy = norm > 0.0f ? ny / norm : 1.0f;

    for (int i = 0; i < count; ++i) {
        const float t = static_cast<float>(rng.uniform(0.05, 0.95));
        const int lane = rng.uniform_int(0, road.lanes - 1);
        const float lane_offset =
            (static_cast<float>(lane) + 0.5f) / static_cast<float>(road.lanes);
        const float offset = (lane_offset - 0.5f) * road.width * 0.85f;
        const float x = road.x0 + dx * t + ux * offset;
        const float y = road.y0 + dy * t + uy * offset;
        const ObjectClass cls = rng.pick(mix);
        // Opposite lanes drive in opposite directions.
        const float dir = lane * 2 < road.lanes ? heading : heading + kPi;
        scene.objects.push_back(make_object(cls, x, y, dir, rng, true));
    }
}

/// Scatters `count` objects uniformly in a rectangle.
void scatter(Scene& scene, float cx, float cy, float w, float h, int count,
             const std::vector<ObjectClass>& mix, Rng& rng, bool moving) {
    for (int i = 0; i < count; ++i) {
        const float x = cx + static_cast<float>(rng.uniform(-0.5, 0.5)) * w;
        const float y = cy + static_cast<float>(rng.uniform(-0.5, 0.5)) * h;
        const float heading = static_cast<float>(rng.uniform(0.0, 2.0 * kPi));
        scene.objects.push_back(
            make_object(rng.pick(mix), std::clamp(x, 0.02f, 0.98f),
                        std::clamp(y, 0.02f, 0.98f), heading, rng, moving));
    }
}

void add_tree_row(Scene& scene, float x0, float y0, float x1, float y1,
                  int count, Rng& rng) {
    for (int i = 0; i < count; ++i) {
        const float t =
            (static_cast<float>(i) + 0.5f) / static_cast<float>(count);
        Tree tree;
        tree.x = x0 + (x1 - x0) * t +
                 static_cast<float>(rng.uniform(-0.01, 0.01));
        tree.y = y0 + (y1 - y0) * t +
                 static_cast<float>(rng.uniform(-0.01, 0.01));
        tree.radius = static_cast<float>(rng.uniform(0.015, 0.035));
        scene.trees.push_back(tree);
    }
}

void add_building_block(Scene& scene, float cx, float cy, float span, int count,
                        Rng& rng, const Color& roof_base) {
    for (int i = 0; i < count; ++i) {
        Building b;
        b.x = cx + static_cast<float>(rng.uniform(-0.5, 0.5)) * span;
        b.y = cy + static_cast<float>(rng.uniform(-0.5, 0.5)) * span;
        b.w = static_cast<float>(rng.uniform(0.05, 0.13));
        b.h = static_cast<float>(rng.uniform(0.05, 0.13));
        b.heading = static_cast<float>(rng.uniform(-0.15, 0.15));
        const float tint = static_cast<float>(rng.uniform(0.85, 1.15));
        b.roof = {std::min(roof_base.r * tint, 1.0f),
                  std::min(roof_base.g * tint, 1.0f),
                  std::min(roof_base.b * tint, 1.0f)};
        scene.buildings.push_back(b);
    }
}

int band(Rng& rng, int lo, int hi) { return rng.uniform_int(lo, hi); }

// ---- per-scenario grammars --------------------------------------------------

void build_highway(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.40f, 0.42f, 0.36f};
    const float road_y = static_cast<float>(rng.uniform(0.35, 0.65));
    RoadSegment highway{0.0f, road_y, 1.0f, road_y, 0.16f, 4, true};
    scene.roads.push_back(highway);
    // Dense neighbourhood on one side, wooded hillside on the other.
    add_building_block(scene, 0.5f, road_y - 0.28f, 0.7f, band(rng, 5, 9), rng,
                       {0.55f, 0.45f, 0.42f});
    add_tree_row(scene, 0.05f, road_y + 0.22f, 0.95f, road_y + 0.30f,
                 band(rng, 6, 10), rng);
    scene.patches.push_back(
        {0.5f, road_y + 0.32f, 1.0f, 0.4f, {0.25f, 0.42f, 0.22f}});
    populate_road(scene, highway, object_budget,
                  {ObjectClass::kCar, ObjectClass::kCar, ObjectClass::kCar,
                   ObjectClass::kVan, ObjectClass::kTruck, ObjectClass::kBus},
                  rng);
}

void build_intersection(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.46f, 0.45f, 0.43f};
    const float cx = static_cast<float>(rng.uniform(0.4, 0.6));
    const float cy = static_cast<float>(rng.uniform(0.4, 0.6));
    RoadSegment ew{0.0f, cy, 1.0f, cy, 0.12f, 2, true};
    RoadSegment ns{cx, 0.0f, cx, 1.0f, 0.12f, 2, true};
    scene.roads.push_back(ew);
    scene.roads.push_back(ns);
    add_building_block(scene, cx - 0.3f, cy - 0.3f, 0.3f, band(rng, 2, 4), rng,
                       {0.6f, 0.5f, 0.45f});
    add_building_block(scene, cx + 0.3f, cy + 0.3f, 0.3f, band(rng, 2, 4), rng,
                       {0.5f, 0.5f, 0.55f});
    add_tree_row(scene, cx + 0.2f, cy - 0.35f, cx + 0.4f, cy - 0.1f,
                 band(rng, 3, 5), rng);
    const int vehicles = object_budget * 2 / 3;
    populate_road(scene, ew, vehicles / 2,
                  {ObjectClass::kCar, ObjectClass::kVan, ObjectClass::kMotor},
                  rng);
    populate_road(scene, ns, vehicles - vehicles / 2,
                  {ObjectClass::kCar, ObjectClass::kBus, ObjectClass::kTricycle},
                  rng);
    scatter(scene, cx, cy, 0.35f, 0.35f, object_budget - vehicles,
            {ObjectClass::kPedestrian, ObjectClass::kPeople,
             ObjectClass::kBicycle},
            rng, true);
}

void build_residential(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.44f, 0.46f, 0.40f};
    const float road_x = static_cast<float>(rng.uniform(0.4, 0.6));
    RoadSegment street{road_x, 0.0f, road_x, 1.0f, 0.08f, 2, false};
    scene.roads.push_back(street);
    add_building_block(scene, road_x - 0.27f, 0.3f, 0.4f, band(rng, 4, 7), rng,
                       {0.62f, 0.42f, 0.36f});
    add_building_block(scene, road_x + 0.27f, 0.7f, 0.4f, band(rng, 4, 7), rng,
                       {0.58f, 0.46f, 0.4f});
    add_tree_row(scene, 0.1f, 0.1f, 0.9f, 0.15f, band(rng, 4, 7), rng);
    const int parked = object_budget / 2;
    populate_road(scene, street, parked,
                  {ObjectClass::kCar, ObjectClass::kCar, ObjectClass::kVan},
                  rng);
    scatter(scene, 0.5f, 0.5f, 0.9f, 0.9f, object_budget - parked,
            {ObjectClass::kPedestrian, ObjectClass::kBicycle,
             ObjectClass::kMotor},
            rng, false);
}

void build_market(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.5f, 0.46f, 0.4f};
    const float street_y = static_cast<float>(rng.uniform(0.42, 0.58));
    RoadSegment street{0.0f, street_y, 1.0f, street_y, 0.07f, 1, false};
    scene.roads.push_back(street);
    // Red-roofed stalls and buildings lining the narrow street.
    add_building_block(scene, 0.5f, street_y - 0.2f, 0.8f, band(rng, 6, 9),
                       rng, {0.7f, 0.25f, 0.2f});
    add_building_block(scene, 0.5f, street_y + 0.2f, 0.8f, band(rng, 6, 9),
                       rng, {0.72f, 0.3f, 0.22f});
    const int crowd = object_budget * 3 / 4;
    scatter(scene, 0.5f, street_y, 0.9f, 0.12f, crowd,
            {ObjectClass::kPedestrian, ObjectClass::kPedestrian,
             ObjectClass::kPeople, ObjectClass::kTricycle,
             ObjectClass::kAwningTricycle},
            rng, true);
    scatter(scene, 0.5f, street_y, 0.9f, 0.2f, object_budget - crowd,
            {ObjectClass::kMotor, ObjectClass::kBicycle, ObjectClass::kVan},
            rng, false);
}

void build_park(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.3f, 0.48f, 0.26f};
    // Pond.
    scene.patches.push_back({static_cast<float>(rng.uniform(0.55, 0.75)),
                             static_cast<float>(rng.uniform(0.55, 0.75)),
                             0.3f, 0.24f,
                             {0.2f, 0.35f, 0.55f}});
    // Paved walkway.
    RoadSegment walkway{0.05f, 0.2f, 0.95f, 0.8f, 0.045f, 1, false};
    scene.roads.push_back(walkway);
    add_tree_row(scene, 0.1f, 0.25f, 0.9f, 0.85f, band(rng, 8, 12), rng);
    add_tree_row(scene, 0.15f, 0.1f, 0.85f, 0.2f, band(rng, 4, 6), rng);
    scatter(scene, 0.5f, 0.5f, 0.8f, 0.7f, object_budget,
            {ObjectClass::kPedestrian, ObjectClass::kPedestrian,
             ObjectClass::kPeople, ObjectClass::kBicycle},
            rng, true);
}

void build_campus(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.5f, 0.5f, 0.47f};
    RoadSegment walk1{0.0f, 0.5f, 1.0f, 0.5f, 0.06f, 1, false};
    RoadSegment walk2{0.5f, 0.0f, 0.5f, 1.0f, 0.06f, 1, false};
    scene.roads.push_back(walk1);
    scene.roads.push_back(walk2);
    scene.patches.push_back({0.25f, 0.25f, 0.35f, 0.35f, {0.32f, 0.5f, 0.28f}});
    scene.patches.push_back({0.75f, 0.75f, 0.35f, 0.35f, {0.34f, 0.52f, 0.3f}});
    add_building_block(scene, 0.75f, 0.25f, 0.3f, band(rng, 2, 3), rng,
                       {0.52f, 0.48f, 0.5f});
    add_tree_row(scene, 0.1f, 0.45f, 0.9f, 0.45f, band(rng, 5, 8), rng);
    const int people = object_budget * 3 / 4;
    scatter(scene, 0.5f, 0.5f, 0.85f, 0.85f, people,
            {ObjectClass::kPedestrian, ObjectClass::kPeople,
             ObjectClass::kBicycle},
            rng, true);
    // A few cars parked on the side of the road.
    populate_road(scene, walk1, object_budget - people,
                  {ObjectClass::kCar, ObjectClass::kVan}, rng);
}

void build_parking(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.42f, 0.42f, 0.43f};
    // Warehouse building on one edge.
    Building warehouse;
    warehouse.x = 0.5f;
    warehouse.y = 0.12f;
    warehouse.w = 0.7f;
    warehouse.h = 0.18f;
    warehouse.roof = {0.58f, 0.58f, 0.6f};
    scene.buildings.push_back(warehouse);
    // Rows of parked vans/trucks.
    const int rows = band(rng, 3, 5);
    int remaining = object_budget;
    for (int r = 0; r < rows && remaining > 0; ++r) {
        const float row_y = 0.3f + 0.15f * static_cast<float>(r);
        const int in_row = std::min(remaining, object_budget / rows + 1);
        for (int i = 0; i < in_row; ++i) {
            const float x =
                0.08f + 0.84f * (static_cast<float>(i) + 0.5f) /
                            static_cast<float>(in_row);
            const ObjectClass cls = rng.bernoulli(0.6)
                                        ? ObjectClass::kVan
                                        : (rng.bernoulli(0.5)
                                               ? ObjectClass::kTruck
                                               : ObjectClass::kCar);
            scene.objects.push_back(
                make_object(cls, x, row_y, kPi / 2.0f, rng, false));
        }
        remaining -= in_row;
    }
}

void build_plaza(Scene& scene, int object_budget, Rng& rng) {
    scene.base_ground = {0.55f, 0.53f, 0.5f};
    scene.patches.push_back({0.5f, 0.5f, 0.16f, 0.16f, {0.3f, 0.42f, 0.55f}});
    add_building_block(scene, 0.15f, 0.5f, 0.2f, band(rng, 2, 3), rng,
                       {0.5f, 0.47f, 0.52f});
    add_building_block(scene, 0.85f, 0.5f, 0.2f, band(rng, 2, 3), rng,
                       {0.48f, 0.5f, 0.54f});
    add_tree_row(scene, 0.2f, 0.15f, 0.8f, 0.15f, band(rng, 4, 6), rng);
    add_tree_row(scene, 0.2f, 0.85f, 0.8f, 0.85f, band(rng, 4, 6), rng);
    scatter(scene, 0.5f, 0.5f, 0.7f, 0.7f, object_budget,
            {ObjectClass::kPedestrian, ObjectClass::kPedestrian,
             ObjectClass::kPeople, ObjectClass::kBicycle},
            rng, true);
}

}  // namespace

Camera random_camera(util::Rng& rng) {
    Camera cam;
    cam.look_x = static_cast<float>(rng.uniform(0.4, 0.6));
    cam.look_y = static_cast<float>(rng.uniform(0.4, 0.6));
    cam.altitude = static_cast<float>(rng.uniform(0.55, 1.4));
    cam.pitch = static_cast<float>(rng.uniform(0.0, 0.6));
    cam.azimuth = static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi));
    return cam;
}

Scene generate_scene(ScenarioKind kind, TimeOfDay time, util::Rng& rng, int id,
                     const GeneratorConfig& config) {
    Scene scene;
    scene.id = id;
    scene.kind = kind;
    scene.time = time;
    scene.cloudiness = static_cast<float>(rng.uniform(0.0, 0.6));
    const int budget = rng.uniform_int(config.min_objects, config.max_objects);
    switch (kind) {
        case ScenarioKind::kHighway: build_highway(scene, budget, rng); break;
        case ScenarioKind::kIntersection:
            build_intersection(scene, budget, rng);
            break;
        case ScenarioKind::kResidential:
            build_residential(scene, budget, rng);
            break;
        case ScenarioKind::kMarket: build_market(scene, budget, rng); break;
        case ScenarioKind::kPark: build_park(scene, budget, rng); break;
        case ScenarioKind::kCampus: build_campus(scene, budget, rng); break;
        case ScenarioKind::kParking: build_parking(scene, budget, rng); break;
        case ScenarioKind::kPlaza: build_plaza(scene, budget, rng); break;
    }
    scene.camera = config.randomize_camera ? random_camera(rng) : Camera{};
    return scene;
}

Scene generate_random_scene(util::Rng& rng, int id,
                            const GeneratorConfig& config) {
    const auto kind =
        static_cast<ScenarioKind>(rng.uniform_int(0, kNumScenarios - 1));
    const TimeOfDay time = rng.bernoulli(config.night_fraction)
                               ? TimeOfDay::kNight
                               : TimeOfDay::kDay;
    return generate_scene(kind, time, rng, id, config);
}

Scene generate_classical_scene(util::Rng& rng, int id) {
    Scene scene;
    scene.id = id;
    scene.kind = ScenarioKind::kPlaza;
    scene.time = TimeOfDay::kDay;
    scene.base_ground = {0.7f, 0.68f, 0.6f};
    const int count = rng.uniform_int(1, 2);
    for (int i = 0; i < count; ++i) {
        SceneObject obj = make_object(
            rng.bernoulli(0.5) ? ObjectClass::kCar : ObjectClass::kPedestrian,
            static_cast<float>(rng.uniform(0.3, 0.7)),
            static_cast<float>(rng.uniform(0.3, 0.7)),
            static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi)), rng,
            false);
        // Classical datasets frame their 1-2 subjects large.
        obj.length *= 8.0f;
        obj.width *= 8.0f;
        scene.objects.push_back(obj);
    }
    return scene;
}

}  // namespace aero::scene
