#include "scene/types.hpp"

#include <algorithm>

namespace aero::scene {

const char* class_name(ObjectClass cls) {
    switch (cls) {
        case ObjectClass::kPedestrian: return "pedestrian";
        case ObjectClass::kPeople: return "person";
        case ObjectClass::kBicycle: return "bicycle";
        case ObjectClass::kCar: return "car";
        case ObjectClass::kVan: return "van";
        case ObjectClass::kTruck: return "truck";
        case ObjectClass::kTricycle: return "tricycle";
        case ObjectClass::kAwningTricycle: return "awning-tricycle";
        case ObjectClass::kBus: return "bus";
        case ObjectClass::kMotor: return "motorcycle";
    }
    return "object";
}

std::string class_plural(ObjectClass cls) {
    switch (cls) {
        case ObjectClass::kPedestrian: return "pedestrians";
        case ObjectClass::kPeople: return "people";
        case ObjectClass::kBicycle: return "bicycles";
        case ObjectClass::kCar: return "cars";
        case ObjectClass::kVan: return "vans";
        case ObjectClass::kTruck: return "trucks";
        case ObjectClass::kTricycle: return "tricycles";
        case ObjectClass::kAwningTricycle: return "awning-tricycles";
        case ObjectClass::kBus: return "buses";
        case ObjectClass::kMotor: return "motorcycles";
    }
    return "objects";
}

const char* scenario_name(ScenarioKind kind) {
    switch (kind) {
        case ScenarioKind::kHighway: return "busy highway";
        case ScenarioKind::kIntersection: return "urban intersection";
        case ScenarioKind::kResidential: return "residential neighborhood";
        case ScenarioKind::kMarket: return "bustling market street";
        case ScenarioKind::kPark: return "tranquil park";
        case ScenarioKind::kCampus: return "paved campus";
        case ScenarioKind::kParking: return "logistics parking lot";
        case ScenarioKind::kPlaza: return "open plaza";
    }
    return "scene";
}

AltitudeBand altitude_band(const Camera& camera) {
    if (camera.altitude < 0.75f) return AltitudeBand::kLow;
    if (camera.altitude < 1.15f) return AltitudeBand::kMedium;
    return AltitudeBand::kHigh;
}

PitchBand pitch_band(const Camera& camera) {
    if (camera.pitch < 0.15f) return PitchBand::kTopDown;
    if (camera.pitch < 0.45f) return PitchBand::kSlightAngle;
    return PitchBand::kSideAngle;
}

float iou(const BoundingBox& a, const BoundingBox& b) {
    const float ix0 = std::max(a.x, b.x);
    const float iy0 = std::max(a.y, b.y);
    const float ix1 = std::min(a.x + a.w, b.x + b.w);
    const float iy1 = std::min(a.y + a.h, b.y + b.h);
    const float iw = std::max(0.0f, ix1 - ix0);
    const float ih = std::max(0.0f, iy1 - iy0);
    const float inter = iw * ih;
    const float uni = a.area() + b.area() - inter;
    return uni <= 0.0f ? 0.0f : inter / uni;
}

}  // namespace aero::scene
