#pragma once
// Scene rasteriser. Applies the drone-camera view transform (zoom from
// altitude, rotation from azimuth, oblique foreshortening from pitch),
// paints layout and objects, then applies day/night lighting. Also
// projects ground-truth bounding boxes through the same transform so
// annotations always agree with pixels.

#include "scene/types.hpp"

namespace aero::scene {

/// World -> pixel mapping induced by a camera and an output resolution.
class ViewTransform {
public:
    ViewTransform(const Camera& camera, int image_size);

    /// Projects a world point to (possibly out-of-bounds) pixel coords.
    void project(float wx, float wy, float* px, float* py) const;
    /// Inverse: pixel centre to world point.
    void unproject(float px, float py, float* wx, float* wy) const;

    /// Pixels per world unit along the x (cross-view) axis.
    float zoom() const { return zoom_; }
    /// Extra squash applied along the view axis (cos pitch).
    float foreshorten() const { return foreshorten_; }
    /// Rotation applied to world headings to get image headings.
    float rotation() const { return rotation_; }

private:
    float look_x_;
    float look_y_;
    float cos_az_;
    float sin_az_;
    float zoom_;
    float foreshorten_;
    float rotation_;
    float half_size_;
};

struct RenderOptions {
    int image_size = 64;
    /// Sensor noise stddev added after lighting (0 disables).
    float sensor_noise = 0.01f;
    /// Seed for the procedural ground texture / noise.
    std::uint64_t texture_seed = 1234;
};

/// Renders the scene to an RGB image.
image::Image render(const Scene& scene, const RenderOptions& options = {});

/// Ground-truth boxes for every object visible at the given resolution
/// (same camera model as render). Boxes are clipped to the image; objects
/// that fall outside or project below ~half a pixel are dropped.
std::vector<BoundingBox> ground_truth_boxes(const Scene& scene,
                                            int image_size);

}  // namespace aero::scene
