#pragma once
// Procedural scenario generators. Each ScenarioKind gets a distinct
// layout grammar (roads / buildings / vegetation) plus an object
// population rule tuned so scenes carry ~20-90 annotated objects --
// matching the density the paper reports for VisDrone (Fig. 1).

#include "scene/types.hpp"
#include "util/rng.hpp"

namespace aero::scene {

struct GeneratorConfig {
    /// Inclusive object-count band across all scenarios.
    int min_objects = 20;
    int max_objects = 90;
    /// Probability a generated scene is captured at night.
    double night_fraction = 0.2;
    /// If true, camera parameters are randomised per scene; otherwise the
    /// default nadir medium-altitude camera is used.
    bool randomize_camera = true;
};

/// Generates a full scene of the requested kind. Deterministic given the
/// rng state; `id` is recorded in the scene for bookkeeping.
Scene generate_scene(ScenarioKind kind, TimeOfDay time, util::Rng& rng,
                     int id = 0, const GeneratorConfig& config = {});

/// Uniformly random scenario kind / time-of-day per `config`.
Scene generate_random_scene(util::Rng& rng, int id = 0,
                            const GeneratorConfig& config = {});

/// A "classical" image-synthesis scene for Fig. 1's comparison: one or
/// two large objects on a plain background (FlintStones-like density).
Scene generate_classical_scene(util::Rng& rng, int id = 0);

/// Random drone camera: altitude 0.55-1.4, pitch 0-0.6 rad, any azimuth.
Camera random_camera(util::Rng& rng);

}  // namespace aero::scene
