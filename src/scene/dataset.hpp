#pragma once
// The paired text-aerial dataset builder (the paper's contribution (2)).
// Each sample carries the rendered image, the ground-truth scene graph,
// and the projected annotations; captions are attached later by the
// text module, detections by the detector.

#include <vector>

#include "scene/generator.hpp"
#include "scene/renderer.hpp"

namespace aero::scene {

struct AerialSample {
    Scene scene;
    image::Image image;
    std::vector<BoundingBox> gt_boxes;
};

struct DatasetConfig {
    int train_size = 96;
    int test_size = 32;
    int image_size = 32;
    GeneratorConfig generator;
    RenderOptions render;
    std::uint64_t seed = 2025;
};

/// A reproducible train/test split of synthetic aerial scenes.
class AerialDataset {
public:
    explicit AerialDataset(const DatasetConfig& config);

    const std::vector<AerialSample>& train() const { return train_; }
    const std::vector<AerialSample>& test() const { return test_; }
    const DatasetConfig& config() const { return config_; }

    /// Per-class object counts over the train split.
    std::vector<int> class_histogram() const;
    /// Objects-per-image counts over both splits.
    std::vector<int> objects_per_image() const;

private:
    DatasetConfig config_;
    std::vector<AerialSample> train_;
    std::vector<AerialSample> test_;
};

/// Renders the same scene under a different camera: the mechanism behind
/// viewpoint-transition evaluation (Table III).
AerialSample reproject_sample(const AerialSample& sample,
                              const Camera& new_camera);

/// Renders the same scene at a different time of day (Fig. 5 nighttime).
AerialSample relight_sample(const AerialSample& sample, TimeOfDay time);

}  // namespace aero::scene
