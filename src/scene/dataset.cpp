#include "scene/dataset.hpp"

namespace aero::scene {

namespace {

AerialSample make_sample(Scene scene, const RenderOptions& base_render,
                         int image_size) {
    RenderOptions options = base_render;
    options.image_size = image_size;
    options.texture_seed =
        base_render.texture_seed + static_cast<std::uint64_t>(scene.id) * 7919;
    AerialSample sample;
    sample.image = render(scene, options);
    sample.gt_boxes = ground_truth_boxes(scene, image_size);
    sample.scene = std::move(scene);
    return sample;
}

}  // namespace

AerialDataset::AerialDataset(const DatasetConfig& config) : config_(config) {
    util::Rng rng(config.seed);
    train_.reserve(static_cast<std::size_t>(config.train_size));
    test_.reserve(static_cast<std::size_t>(config.test_size));
    for (int i = 0; i < config.train_size + config.test_size; ++i) {
        Scene scene = generate_random_scene(rng, i, config.generator);
        AerialSample sample =
            make_sample(std::move(scene), config.render, config.image_size);
        if (i < config.train_size) {
            train_.push_back(std::move(sample));
        } else {
            test_.push_back(std::move(sample));
        }
    }
}

std::vector<int> AerialDataset::class_histogram() const {
    std::vector<int> counts(kNumObjectClasses, 0);
    for (const AerialSample& sample : train_) {
        for (const SceneObject& obj : sample.scene.objects) {
            counts[static_cast<std::size_t>(obj.cls)]++;
        }
    }
    return counts;
}

std::vector<int> AerialDataset::objects_per_image() const {
    std::vector<int> counts;
    counts.reserve(train_.size() + test_.size());
    for (const AerialSample& sample : train_) {
        counts.push_back(static_cast<int>(sample.scene.objects.size()));
    }
    for (const AerialSample& sample : test_) {
        counts.push_back(static_cast<int>(sample.scene.objects.size()));
    }
    return counts;
}

AerialSample reproject_sample(const AerialSample& sample,
                              const Camera& new_camera) {
    Scene scene = sample.scene;
    scene.camera = new_camera;
    RenderOptions options;
    options.image_size = sample.image.width();
    options.texture_seed =
        1234 + static_cast<std::uint64_t>(scene.id) * 7919;
    AerialSample out;
    out.image = render(scene, options);
    out.gt_boxes = ground_truth_boxes(scene, options.image_size);
    out.scene = std::move(scene);
    return out;
}

AerialSample relight_sample(const AerialSample& sample, TimeOfDay time) {
    Scene scene = sample.scene;
    scene.time = time;
    RenderOptions options;
    options.image_size = sample.image.width();
    options.texture_seed =
        1234 + static_cast<std::uint64_t>(scene.id) * 7919;
    AerialSample out;
    out.image = render(scene, options);
    out.gt_boxes = ground_truth_boxes(scene, options.image_size);
    out.scene = std::move(scene);
    return out;
}

}  // namespace aero::scene
