#include "scene/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace aero::scene {

namespace {

using image::Color;
using image::Image;

/// Cheap deterministic 2-D hash noise in [0,1) for ground texture.
float hash_noise(int x, int y, std::uint64_t seed) {
    std::uint64_t h = seed;
    h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::uint64_t>(y) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<float>(h >> 40) / static_cast<float>(1 << 24);
}

/// Distance from point p to segment (a, b), plus the parameter t along it.
float point_segment_distance(float px, float py, float ax, float ay, float bx,
                             float by, float* t_out) {
    const float abx = bx - ax;
    const float aby = by - ay;
    const float len2 = abx * abx + aby * aby;
    float t = 0.0f;
    if (len2 > 0.0f) {
        t = ((px - ax) * abx + (py - ay) * aby) / len2;
        t = std::clamp(t, 0.0f, 1.0f);
    }
    const float cx = ax + abx * t;
    const float cy = ay + aby * t;
    if (t_out != nullptr) *t_out = t;
    return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

bool inside_oriented_rect(float px, float py, float cx, float cy, float w,
                          float h, float heading) {
    const float dx = px - cx;
    const float dy = py - cy;
    const float cos_h = std::cos(heading);
    const float sin_h = std::sin(heading);
    const float lx = dx * cos_h + dy * sin_h;
    const float ly = -dx * sin_h + dy * cos_h;
    return std::abs(lx) <= 0.5f * w && std::abs(ly) <= 0.5f * h;
}

/// Colour of the static scene (everything except objects) at world point.
Color static_scene_color(const Scene& scene, float wx, float wy,
                         const RenderOptions& options) {
    // Ground with procedural texture.
    const float tex =
        hash_noise(static_cast<int>(wx * 512.0f),
                   static_cast<int>(wy * 512.0f), options.texture_seed) *
            0.08f -
        0.04f;
    Color c = {scene.base_ground.r + tex, scene.base_ground.g + tex,
               scene.base_ground.b + tex};

    for (const GroundPatch& patch : scene.patches) {
        if (std::abs(wx - patch.x) <= 0.5f * patch.w &&
            std::abs(wy - patch.y) <= 0.5f * patch.h) {
            c = {patch.color.r + tex * 0.5f, patch.color.g + tex * 0.5f,
                 patch.color.b + tex * 0.5f};
        }
    }

    for (const RoadSegment& road : scene.roads) {
        float t = 0.0f;
        const float dist = point_segment_distance(wx, wy, road.x0, road.y0,
                                                  road.x1, road.y1, &t);
        if (dist <= 0.5f * road.width) {
            const float asphalt = 0.30f + tex * 0.5f;
            c = {asphalt, asphalt, asphalt + 0.01f};
            if (road.lane_markings) {
                // Dashed centre line(s) between lanes plus solid edges.
                const float along = t * std::hypot(road.x1 - road.x0,
                                                   road.y1 - road.y0);
                const bool dash_on =
                    std::fmod(along, 0.05f) < 0.03f;
                for (int lane = 1; lane < road.lanes; ++lane) {
                    const float lane_pos =
                        (static_cast<float>(lane) /
                             static_cast<float>(road.lanes) -
                         0.5f) *
                        road.width;
                    if (std::abs(dist - std::abs(lane_pos)) <
                            road.width * 0.025f &&
                        dash_on) {
                        c = {0.85f, 0.85f, 0.82f};
                    }
                }
                if (std::abs(dist - 0.5f * road.width) <
                    road.width * 0.03f) {
                    c = {0.8f, 0.8f, 0.78f};
                }
            }
        }
    }

    for (const Building& b : scene.buildings) {
        if (inside_oriented_rect(wx, wy, b.x, b.y, b.w, b.h, b.heading)) {
            c = b.roof;
            // Darkened rim suggests walls/parapets.
            if (!inside_oriented_rect(wx, wy, b.x, b.y, b.w * 0.85f,
                                      b.h * 0.85f, b.heading)) {
                c = image::scale(c, 0.7f);
            }
        }
    }

    for (const Tree& tree : scene.trees) {
        const float dx = wx - tree.x;
        const float dy = wy - tree.y;
        const float d2 = dx * dx + dy * dy;
        if (d2 <= tree.radius * tree.radius) {
            const float shade =
                0.75f + 0.25f * (1.0f - std::sqrt(d2) / tree.radius);
            c = {0.10f * shade + tex, 0.38f * shade + tex, 0.12f * shade + tex};
        }
    }
    return c;
}

/// Projected oriented-rectangle footprint of an object in pixel space.
struct ProjectedObject {
    float px;
    float py;
    float length_px;
    float width_px;
    float heading_image;
};

ProjectedObject project_object(const SceneObject& obj,
                               const ViewTransform& view) {
    ProjectedObject p;
    view.project(obj.x, obj.y, &p.px, &p.py);
    p.length_px = obj.length * view.zoom();
    // Cross-view squash from pitch is approximated isotropically for the
    // small object footprints.
    p.width_px = obj.width * view.zoom() *
                 (0.5f + 0.5f * view.foreshorten());
    p.heading_image = obj.heading + view.rotation();
    return p;
}

void draw_objects(Image& img, const Scene& scene, const ViewTransform& view) {
    // Day scenes get soft shadows offset by a fixed sun direction.
    const bool day = scene.time == TimeOfDay::kDay;
    const float shadow_dx = 1.2f;
    const float shadow_dy = 1.2f;
    for (const SceneObject& obj : scene.objects) {
        const ProjectedObject p = project_object(obj, view);
        const float len = std::max(p.length_px, 1.0f);
        const float wid = std::max(p.width_px, 1.0f);
        if (day && scene.cloudiness < 0.5f) {
            image::fill_oriented_rect(img, p.px + shadow_dx, p.py + shadow_dy,
                                      len, wid, p.heading_image,
                                      {0.05f, 0.05f, 0.06f}, 0.35f);
        }
        image::fill_oriented_rect(img, p.px, p.py, len, wid, p.heading_image,
                                  obj.color, 1.0f);
        // Windshield hint for larger vehicles.
        if (obj.cls != ObjectClass::kPedestrian &&
            obj.cls != ObjectClass::kPeople && len >= 3.0f) {
            const float offset = len * 0.25f;
            image::fill_oriented_rect(
                img, p.px + std::cos(p.heading_image) * offset,
                p.py + std::sin(p.heading_image) * offset, len * 0.25f,
                wid * 0.8f, p.heading_image, {0.15f, 0.18f, 0.25f}, 0.9f);
        }
    }
}

void apply_day_lighting(Image& img, const Scene& scene) {
    // Overcast scenes are flatter and cooler.
    const float k = scene.cloudiness;
    if (k > 0.0f) {
        image::adjust_tone(img, {1.0f - 0.15f * k, 1.0f - 0.12f * k, 1.0f},
                           {0.04f * k, 0.04f * k, 0.05f * k});
    }
}

void apply_night_lighting(Image& img, const Scene& scene,
                          const ViewTransform& view,
                          const RenderOptions& options) {
    // Darken and cool the whole frame.
    image::adjust_tone(img, {0.18f, 0.19f, 0.26f}, {0.01f, 0.01f, 0.03f});

    // Additive glow layer: headlights, street lights, lit windows.
    Image glow(img.width(), img.height());
    util::Rng rng(options.texture_seed ^ 0xfeedu);

    for (const SceneObject& obj : scene.objects) {
        if (obj.cls == ObjectClass::kPedestrian ||
            obj.cls == ObjectClass::kPeople || !obj.moving) {
            continue;
        }
        float px = 0.0f;
        float py = 0.0f;
        view.project(obj.x, obj.y, &px, &py);
        const float heading = obj.heading + view.rotation();
        const float front = obj.length * 0.5f * view.zoom();
        // Headlights (warm) and tail light (red).
        image::fill_disk(glow, px + std::cos(heading) * front,
                         py + std::sin(heading) * front,
                         std::max(1.2f, front * 0.4f), {1.0f, 0.95f, 0.7f},
                         0.9f);
        image::fill_disk(glow, px - std::cos(heading) * front,
                         py - std::sin(heading) * front,
                         std::max(0.8f, front * 0.25f), {0.9f, 0.15f, 0.1f},
                         0.8f);
    }

    // Street lights at regular intervals along marked roads.
    for (const RoadSegment& road : scene.roads) {
        const float len = std::hypot(road.x1 - road.x0, road.y1 - road.y0);
        const int lights = std::max(2, static_cast<int>(len / 0.12f));
        for (int i = 0; i < lights; ++i) {
            const float t = (static_cast<float>(i) + 0.5f) /
                            static_cast<float>(lights);
            float px = 0.0f;
            float py = 0.0f;
            view.project(road.x0 + (road.x1 - road.x0) * t,
                         road.y0 + (road.y1 - road.y0) * t, &px, &py);
            image::fill_disk(glow, px, py, 2.2f * view.zoom() / 64.0f + 1.5f,
                             {1.0f, 0.85f, 0.55f}, 0.6f);
        }
    }

    // Sparse lit windows on buildings.
    for (const Building& b : scene.buildings) {
        const int windows = rng.uniform_int(1, 3);
        for (int i = 0; i < windows; ++i) {
            float px = 0.0f;
            float py = 0.0f;
            view.project(b.x + static_cast<float>(rng.uniform(-0.4, 0.4)) * b.w,
                         b.y + static_cast<float>(rng.uniform(-0.4, 0.4)) * b.h,
                         &px, &py);
            image::fill_disk(glow, px, py, 1.0f, {0.95f, 0.85f, 0.5f}, 0.7f);
        }
    }

    const Image soft = image::box_blur(glow, 1);
    for (std::size_t i = 0; i < img.data().size(); ++i) {
        img.data()[i] += soft.data()[i] * 0.9f;
    }
    img.clamp01();
}

void apply_oblique_haze(Image& img, const Scene& scene) {
    // Oblique viewpoints see further: fade the top of the frame toward
    // atmospheric haze proportional to pitch.
    const float pitch = scene.camera.pitch;
    if (pitch < 0.05f) return;
    const Color haze = scene.time == TimeOfDay::kDay
                           ? Color{0.75f, 0.8f, 0.85f}
                           : Color{0.08f, 0.08f, 0.14f};
    for (int y = 0; y < img.height(); ++y) {
        const float depth = 1.0f - static_cast<float>(y) /
                                       static_cast<float>(img.height());
        const float k = std::min(0.75f, depth * depth * pitch * 1.2f);
        for (int x = 0; x < img.width(); ++x) {
            img.blend_pixel(x, y, haze, k);
        }
    }
}

}  // namespace

ViewTransform::ViewTransform(const Camera& camera, int image_size)
    : look_x_(camera.look_x),
      look_y_(camera.look_y),
      cos_az_(std::cos(camera.azimuth)),
      sin_az_(std::sin(camera.azimuth)),
      zoom_(static_cast<float>(image_size) / std::max(camera.altitude, 0.1f)),
      foreshorten_(std::max(std::cos(camera.pitch), 0.3f)),
      rotation_(-camera.azimuth),
      half_size_(static_cast<float>(image_size) * 0.5f) {}

void ViewTransform::project(float wx, float wy, float* px, float* py) const {
    const float dx = wx - look_x_;
    const float dy = wy - look_y_;
    const float rx = dx * cos_az_ + dy * sin_az_;
    const float ry = (-dx * sin_az_ + dy * cos_az_) * foreshorten_;
    *px = rx * zoom_ + half_size_;
    *py = ry * zoom_ + half_size_;
}

void ViewTransform::unproject(float px, float py, float* wx, float* wy) const {
    const float rx = (px - half_size_) / zoom_;
    const float ry = (py - half_size_) / zoom_ / foreshorten_;
    *wx = rx * cos_az_ - ry * sin_az_ + look_x_;
    *wy = rx * sin_az_ + ry * cos_az_ + look_y_;
}

image::Image render(const Scene& scene, const RenderOptions& options) {
    const int size = options.image_size;
    Image img(size, size);
    const ViewTransform view(scene.camera, size);

    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            float wx = 0.0f;
            float wy = 0.0f;
            view.unproject(static_cast<float>(x) + 0.5f,
                           static_cast<float>(y) + 0.5f, &wx, &wy);
            img.set_pixel(x, y, static_scene_color(scene, wx, wy, options));
        }
    }

    draw_objects(img, scene, view);

    if (scene.time == TimeOfDay::kDay) {
        apply_day_lighting(img, scene);
    } else {
        apply_night_lighting(img, scene, view, options);
    }
    apply_oblique_haze(img, scene);

    if (options.sensor_noise > 0.0f) {
        util::Rng noise_rng(options.texture_seed ^ 0xbeefu ^
                            static_cast<std::uint64_t>(scene.id));
        image::add_gaussian_noise(img, noise_rng, options.sensor_noise);
    }
    img.clamp01();
    return img;
}

std::vector<BoundingBox> ground_truth_boxes(const Scene& scene,
                                            int image_size) {
    const ViewTransform view(scene.camera, image_size);
    std::vector<BoundingBox> boxes;
    boxes.reserve(scene.objects.size());
    for (const SceneObject& obj : scene.objects) {
        // Project the four corners of the oriented footprint.
        const float cos_h = std::cos(obj.heading);
        const float sin_h = std::sin(obj.heading);
        float min_x = 1e9f;
        float min_y = 1e9f;
        float max_x = -1e9f;
        float max_y = -1e9f;
        for (int corner = 0; corner < 4; ++corner) {
            const float sx = (corner & 1) ? 0.5f : -0.5f;
            const float sy = (corner & 2) ? 0.5f : -0.5f;
            const float wx =
                obj.x + sx * obj.length * cos_h - sy * obj.width * sin_h;
            const float wy =
                obj.y + sx * obj.length * sin_h + sy * obj.width * cos_h;
            float px = 0.0f;
            float py = 0.0f;
            view.project(wx, wy, &px, &py);
            min_x = std::min(min_x, px);
            min_y = std::min(min_y, py);
            max_x = std::max(max_x, px);
            max_y = std::max(max_y, py);
        }
        // Clip to image, enforce a minimum representable size.
        min_x = std::max(min_x, 0.0f);
        min_y = std::max(min_y, 0.0f);
        max_x = std::min(max_x, static_cast<float>(image_size));
        max_y = std::min(max_y, static_cast<float>(image_size));
        if (max_x - min_x < 0.5f || max_y - min_y < 0.5f) continue;
        BoundingBox box;
        box.x = min_x;
        box.y = min_y;
        box.w = std::max(max_x - min_x, 1.0f);
        box.h = std::max(max_y - min_y, 1.0f);
        box.cls = obj.cls;
        box.score = 1.0f;
        boxes.push_back(box);
    }
    return boxes;
}

}  // namespace aero::scene
