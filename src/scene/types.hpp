#pragma once
// Scene-graph types for the synthetic aerial world. A `Scene` is the
// ground-truth description (layout + objects + camera + lighting) from
// which the renderer produces an RGB image and from which annotations
// (bounding boxes, captions) are derived. This plays the role of the
// VisDrone-DET dataset in the paper: complex aerial scenes with 20-90
// small, densely packed objects per image.

#include <string>
#include <vector>

#include "image/image.hpp"

namespace aero::scene {

/// The ten VisDrone-DET object categories.
enum class ObjectClass {
    kPedestrian = 0,
    kPeople,
    kBicycle,
    kCar,
    kVan,
    kTruck,
    kTricycle,
    kAwningTricycle,
    kBus,
    kMotor,
};

inline constexpr int kNumObjectClasses = 10;

/// Lowercase singular name, e.g. "car".
const char* class_name(ObjectClass cls);
/// Pluralised name, e.g. "cars".
std::string class_plural(ObjectClass cls);

enum class TimeOfDay { kDay, kNight };

enum class ScenarioKind {
    kHighway = 0,
    kIntersection,
    kResidential,
    kMarket,
    kPark,
    kCampus,
    kParking,
    kPlaza,
};

inline constexpr int kNumScenarios = 8;

/// Human-readable scenario label, e.g. "busy highway".
const char* scenario_name(ScenarioKind kind);

/// A dynamic (annotated) object. World coordinates live in [0,1]^2 with
/// +x east and +y south; sizes are in the same units.
struct SceneObject {
    ObjectClass cls = ObjectClass::kCar;
    float x = 0.5f;        ///< centre, world units
    float y = 0.5f;
    float length = 0.02f;  ///< extent along heading
    float width = 0.01f;   ///< extent across heading
    float heading = 0.0f;  ///< radians, 0 = east
    image::Color color;
    bool moving = false;
};

/// Static layout: a straight road segment.
struct RoadSegment {
    float x0 = 0.0f, y0 = 0.0f, x1 = 1.0f, y1 = 1.0f;
    float width = 0.08f;
    int lanes = 2;
    bool lane_markings = true;
};

/// Static layout: a building footprint.
struct Building {
    float x = 0.5f, y = 0.5f;  ///< centre
    float w = 0.1f, h = 0.1f;
    float heading = 0.0f;
    image::Color roof{0.55f, 0.45f, 0.42f};
};

/// Static layout: a tree crown.
struct Tree {
    float x = 0.5f, y = 0.5f;
    float radius = 0.02f;
};

/// Static layout: a ground patch (grass, water, paved plaza...).
struct GroundPatch {
    float x = 0.5f, y = 0.5f;  ///< centre
    float w = 0.3f, h = 0.3f;
    image::Color color{0.35f, 0.5f, 0.3f};
};

/// Drone camera: where it looks and from what vantage. The viewpoint
/// model is an affine view transform -- zoom from altitude, rotation
/// from azimuth, an oblique foreshortening from pitch -- which is what
/// the paper's "viewpoint transition" captions manipulate.
struct Camera {
    float look_x = 0.5f;   ///< world point under the image centre
    float look_y = 0.5f;
    float altitude = 1.0f; ///< visible world span (1.0 = whole scene)
    float pitch = 0.0f;    ///< radians; 0 = nadir (top-down), >0 oblique
    float azimuth = 0.0f;  ///< radians; view rotation
};

/// Qualitative altitude bucket used by captions.
enum class AltitudeBand { kLow, kMedium, kHigh };
AltitudeBand altitude_band(const Camera& camera);
/// Qualitative pitch bucket used by captions.
enum class PitchBand { kTopDown, kSlightAngle, kSideAngle };
PitchBand pitch_band(const Camera& camera);

/// The complete ground-truth scene graph.
struct Scene {
    int id = 0;
    ScenarioKind kind = ScenarioKind::kHighway;
    TimeOfDay time = TimeOfDay::kDay;
    image::Color base_ground{0.45f, 0.44f, 0.42f};
    std::vector<GroundPatch> patches;
    std::vector<RoadSegment> roads;
    std::vector<Building> buildings;
    std::vector<Tree> trees;
    std::vector<SceneObject> objects;
    Camera camera;
    float cloudiness = 0.0f;  ///< 0 = clear, 1 = overcast
};

/// Axis-aligned pixel-space bounding box with its class label: the
/// annotation format shared by ground truth and the detector.
struct BoundingBox {
    float x = 0.0f;  ///< left, pixels
    float y = 0.0f;  ///< top, pixels
    float w = 0.0f;
    float h = 0.0f;
    ObjectClass cls = ObjectClass::kCar;
    float score = 1.0f;  ///< 1 for ground truth; detector confidence otherwise

    float cx() const { return x + 0.5f * w; }
    float cy() const { return y + 0.5f * h; }
    float area() const { return w * h; }
};

/// Intersection-over-union of two boxes.
float iou(const BoundingBox& a, const BoundingBox& b);

}  // namespace aero::scene
