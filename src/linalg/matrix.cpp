#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/thread_pool.hpp"

namespace aero::linalg {

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
}

double Matrix::frobenius_norm() const {
    double sum = 0.0;
    for (double v : data_) sum += v * v;
    return std::sqrt(sum);
}

Matrix operator+(const Matrix& a, const Matrix& b) {
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    Matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < out.data().size(); ++i) {
        out.data()[i] = a.data()[i] + b.data()[i];
    }
    return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    Matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < out.data().size(); ++i) {
        out.data()[i] = a.data()[i] - b.data()[i];
    }
    return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
    assert(a.cols() == b.rows());
    Matrix out(a.rows(), b.cols());
    // Row-block partitioning on the thread pool: each chunk owns a band
    // of output rows and runs the full k-reduction itself, so the
    // summation order per element never depends on the thread count
    // (determinism contract, util/thread_pool.hpp).
    const std::int64_t grain = util::grain_for(
        static_cast<std::int64_t>(a.cols()) * static_cast<std::int64_t>(
                                                  b.cols()),
        1 << 16);
    util::parallel_for(
        0, static_cast<std::int64_t>(a.rows()), grain,
        [&](std::int64_t i0, std::int64_t i1) {
            for (auto i = static_cast<std::size_t>(i0);
                 i < static_cast<std::size_t>(i1); ++i) {
                for (std::size_t k = 0; k < a.cols(); ++k) {
                    const double aik = a(i, k);
                    if (aik == 0.0) continue;
                    for (std::size_t j = 0; j < b.cols(); ++j) {
                        out(i, j) += aik * b(k, j);
                    }
                }
            }
        });
    return out;
}

Matrix operator*(double s, const Matrix& a) {
    Matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < out.data().size(); ++i) {
        out.data()[i] = s * a.data()[i];
    }
    return out;
}

double trace(const Matrix& a) {
    assert(a.rows() == a.cols());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, i);
    return sum;
}

EigenDecomposition eigen_symmetric(const Matrix& input, int max_sweeps) {
    assert(input.rows() == input.cols());
    const std::size_t n = input.rows();

    // Work on the symmetrised copy.
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = 0.5 * (input(r, c) + input(c, r));
        }
    }
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = r + 1; c < n; ++c) off += a(r, c) * a(r, c);
        }
        if (off < 1e-22) break;

        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::abs(apq) < 1e-300) continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double tau = (aqq - app) / (2.0 * apq);
                const double t = (tau >= 0.0)
                                     ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                     : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    EigenDecomposition result;
    result.values.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.values[i] = a(i, i);

    // Sort eigenpairs ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return result.values[x] < result.values[y];
    });
    std::vector<double> sorted_values(n);
    Matrix sorted_vectors(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        sorted_values[j] = result.values[order[j]];
        for (std::size_t i = 0; i < n; ++i) {
            sorted_vectors(i, j) = v(i, order[j]);
        }
    }
    result.values = std::move(sorted_values);
    result.vectors = std::move(sorted_vectors);
    return result;
}

Matrix sqrt_psd(const Matrix& a) {
    const EigenDecomposition eig = eigen_symmetric(a);
    const std::size_t n = a.rows();
    Matrix out(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        const double lambda = std::max(eig.values[k], 0.0);
        const double root = std::sqrt(lambda);
        if (root == 0.0) continue;
        for (std::size_t i = 0; i < n; ++i) {
            const double vik = eig.vectors(i, k);
            if (vik == 0.0) continue;
            for (std::size_t j = 0; j < n; ++j) {
                out(i, j) += root * vik * eig.vectors(j, k);
            }
        }
    }
    return out;
}

Matrix covariance(const Matrix& samples, std::vector<double>* mean_out) {
    const std::size_t n = samples.rows();
    const std::size_t d = samples.cols();
    assert(n >= 2);

    std::vector<double> mean(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) mean[j] += samples(i, j);
    }
    for (double& m : mean) m /= static_cast<double>(n);

    Matrix cov(d, d);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const double xj = samples(i, j) - mean[j];
            if (xj == 0.0) continue;
            for (std::size_t k = j; k < d; ++k) {
                cov(j, k) += xj * (samples(i, k) - mean[k]);
            }
        }
    }
    const double norm = 1.0 / static_cast<double>(n - 1);
    for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t k = j; k < d; ++k) {
            cov(j, k) *= norm;
            cov(k, j) = cov(j, k);
        }
    }
    if (mean_out != nullptr) *mean_out = std::move(mean);
    return cov;
}

}  // namespace aero::linalg
