#pragma once
// Small dense double-precision matrices for the statistics side of the
// evaluation (FID covariance algebra). Deliberately separate from the
// float32 `Tensor` used by the neural nets: metric code wants double
// precision and classical linear-algebra routines, not autograd.

#include <cstddef>
#include <vector>

namespace aero::linalg {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }

    const std::vector<double>& data() const { return data_; }
    std::vector<double>& data() { return data_; }

    Matrix transpose() const;

    /// Frobenius norm.
    double frobenius_norm() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, const Matrix& b);
Matrix operator*(double s, const Matrix& a);

/// Sum of diagonal entries; requires a square matrix.
double trace(const Matrix& a);

/// Result of the symmetric eigendecomposition A = V diag(values) V^T.
struct EigenDecomposition {
    std::vector<double> values;  ///< ascending order
    Matrix vectors;              ///< columns are eigenvectors
};

/// Cyclic Jacobi eigensolver for a symmetric matrix. `a` is symmetrised
/// internally ((A+A^T)/2), so slight asymmetry from accumulated floating
/// error is tolerated.
EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64);

/// Principal square root of a symmetric positive semi-definite matrix via
/// eigendecomposition; negative eigenvalues from round-off are clamped to 0.
Matrix sqrt_psd(const Matrix& a);

/// Row-sample covariance: rows of `samples` are observations. Returns the
/// (cols x cols) covariance with 1/(n-1) normalisation and writes the
/// column means into `mean_out` if non-null.
Matrix covariance(const Matrix& samples, std::vector<double>* mean_out);

}  // namespace aero::linalg
