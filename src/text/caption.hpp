#pragma once
// Caption and prompt-template types. A `Caption` pairs the natural-
// language text with the structured keypoints that text actually encodes
// -- which is what the diffusion conditioning and the CLIP-score
// evaluation consume. A `PromptTemplate` models P_i from Eq. 1: which
// keypoints the LLM is instructed to cover.

#include <string>
#include <vector>

#include "scene/types.hpp"

namespace aero::text {

/// One object-class mention with the count the caption claims.
struct ObjectMention {
    scene::ObjectClass cls = scene::ObjectClass::kCar;
    int count = 0;       ///< claimed count (may differ from ground truth)
    bool vague = false;  ///< "several ..." instead of an exact count
};

/// A generated description G_i with its structured content.
struct Caption {
    std::string text;
    scene::TimeOfDay time = scene::TimeOfDay::kDay;
    scene::AltitudeBand altitude = scene::AltitudeBand::kMedium;
    scene::PitchBand pitch = scene::PitchBand::kTopDown;
    scene::ScenarioKind scenario = scene::ScenarioKind::kHighway;
    std::vector<ObjectMention> mentions;
    bool mentions_time = false;
    bool mentions_viewpoint = false;
    bool mentions_positions = false;
};

/// The manually designed prompt template P_i (Sec. IV-A / Fig. 3):
/// each flag asks the LLM to cover one keypoint family.
struct PromptTemplate {
    bool ask_time_of_day = true;
    bool ask_viewpoint = true;
    bool ask_object_list = true;
    bool ask_positions = true;
    bool chain_of_thought = true;

    /// The keypoint-aware template of Fig. 3.
    static PromptTemplate keypoint_aware();
    /// "Write a description for this image" -- the traditional baseline.
    static PromptTemplate traditional();

    /// Human-readable prompt text (what would be sent to a real LLM).
    std::string render() const;
};

/// Fraction of the four keypoint families (time, viewpoint, objects,
/// positions) that `caption` covers; the Fig. 3 information-coverage
/// statistic.
float keypoint_coverage(const Caption& caption);

/// Count -> caption word ("three", "several", "many"...).
std::string count_word(int count, bool vague);

/// Ground-truth per-class object counts of a scene.
std::vector<ObjectMention> true_mentions(const scene::Scene& scene);

}  // namespace aero::text
