#include "text/parser.hpp"

#include "text/vocabulary.hpp"
#include "util/strings.hpp"

namespace aero::text {

namespace {

bool contains(const std::string& haystack, const std::string& needle) {
    return haystack.find(needle) != std::string::npos;
}

/// Maps a (normalised) noun to its object class, accepting both singular
/// and plural surface forms.
std::optional<scene::ObjectClass> parse_class_noun(const std::string& word) {
    for (int c = 0; c < scene::kNumObjectClasses; ++c) {
        const auto cls = static_cast<scene::ObjectClass>(c);
        if (word == scene::class_name(cls) || word == class_plural(cls)) {
            return cls;
        }
    }
    if (word == "person" || word == "people") return scene::ObjectClass::kPeople;
    return std::nullopt;
}

}  // namespace

std::optional<ParsedCount> parse_count_word(const std::string& word) {
    static const std::pair<const char*, int> kExact[] = {
        {"no", 0},    {"one", 1},   {"two", 2},   {"three", 3},
        {"four", 4},  {"five", 5},  {"six", 6},   {"seven", 7},
        {"eight", 8}, {"nine", 9},  {"ten", 10},  {"eleven", 11},
        {"twelve", 12}};
    for (const auto& [name, value] : kExact) {
        if (word == name) return ParsedCount{value, false};
    }
    if (word == "dozens") return ParsedCount{18, false};
    if (word == "numerous") return ParsedCount{30, false};
    if (word == "a-few") return ParsedCount{2, true};
    if (word == "several") return ParsedCount{6, true};
    if (word == "many") return ParsedCount{12, true};
    if (word == "some") return ParsedCount{4, true};
    return std::nullopt;
}

std::optional<scene::ScenarioKind> parse_scenario(const std::string& text) {
    const std::string lower = util::to_lower(text);
    for (int k = 0; k < scene::kNumScenarios; ++k) {
        const auto kind = static_cast<scene::ScenarioKind>(k);
        if (contains(lower, scene::scenario_name(kind))) return kind;
    }
    // Weaker single-word cues, checked in a fixed priority order.
    if (contains(lower, "highway")) return scene::ScenarioKind::kHighway;
    if (contains(lower, "intersection")) {
        return scene::ScenarioKind::kIntersection;
    }
    if (contains(lower, "market")) return scene::ScenarioKind::kMarket;
    if (contains(lower, "park ") || lower.ends_with("park")) {
        return scene::ScenarioKind::kPark;
    }
    if (contains(lower, "campus")) return scene::ScenarioKind::kCampus;
    if (contains(lower, "parking")) return scene::ScenarioKind::kParking;
    if (contains(lower, "plaza")) return scene::ScenarioKind::kPlaza;
    if (contains(lower, "neighborhood") || contains(lower, "residential")) {
        return scene::ScenarioKind::kResidential;
    }
    return std::nullopt;
}

Caption parse_caption(const std::string& text) {
    Caption caption;
    caption.text = text;
    const std::string lower = util::to_lower(text);

    // Time of day.
    if (contains(lower, "nighttime")) {
        caption.time = scene::TimeOfDay::kNight;
        caption.mentions_time = true;
    } else if (contains(lower, "daytime")) {
        caption.time = scene::TimeOfDay::kDay;
        caption.mentions_time = true;
    }

    // Scenario.
    if (const auto scenario = parse_scenario(lower)) {
        caption.scenario = *scenario;
    }

    // Viewpoint bands.
    if (contains(lower, "low altitude")) {
        caption.altitude = scene::AltitudeBand::kLow;
        caption.mentions_viewpoint = true;
    } else if (contains(lower, "medium altitude")) {
        caption.altitude = scene::AltitudeBand::kMedium;
        caption.mentions_viewpoint = true;
    } else if (contains(lower, "high vantage") ||
               contains(lower, "high above") ||
               contains(lower, "high altitude")) {
        caption.altitude = scene::AltitudeBand::kHigh;
        caption.mentions_viewpoint = true;
    }
    if (contains(lower, "straight down") || contains(lower, "top-down") ||
        contains(lower, "bird")) {
        caption.pitch = scene::PitchBand::kTopDown;
        caption.mentions_viewpoint = true;
    } else if (contains(lower, "slightly angled") ||
               contains(lower, "slight angle")) {
        caption.pitch = scene::PitchBand::kSlightAngle;
        caption.mentions_viewpoint = true;
    } else if (contains(lower, "angle to the side") ||
               contains(lower, "side angle")) {
        caption.pitch = scene::PitchBand::kSideAngle;
        caption.mentions_viewpoint = true;
    }

    // Object mentions: scan for "<count-word> <class-noun>" bigrams.
    const std::vector<std::string> words = util::split_whitespace(lower);
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
        const std::string count_word = normalize_word(words[i]);
        const std::string noun = normalize_word(words[i + 1]);
        const auto count = parse_count_word(count_word);
        if (!count) continue;
        const auto cls = parse_class_noun(noun);
        if (!cls) continue;
        ObjectMention mention;
        mention.cls = *cls;
        mention.count = count->count;
        mention.vague = count->vague;
        caption.mentions.push_back(mention);
    }

    // Position sentences use layout vocabulary.
    caption.mentions_positions =
        contains(lower, "left") || contains(lower, "right") ||
        contains(lower, "center") || contains(lower, "edge") ||
        contains(lower, "along");
    return caption;
}

}  // namespace aero::text
