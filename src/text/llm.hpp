#pragma once
// Simulated black-box LLM captioners (Eq. 1: G_i = LLM(X_i, O_i, P_i)).
//
// A real deployment calls GPT-4o / Gemini over an API; offline we model
// each backend as a grammar over the ground-truth scene graph plus a
// calibrated noise model reproducing the failure modes the paper
// describes (Fig. 3): omitted objects, vague counts, hallucinated
// content, and wrong viewpoint/lighting wording. The keypoint-aware
// template constrains the output so the noise has less room to act --
// exactly the paper's argument for structured prompting.

#include "scene/types.hpp"
#include "text/caption.hpp"
#include "util/rng.hpp"

namespace aero::text {

/// Probabilities of each caption corruption.
struct LlmNoiseModel {
    double object_omission = 0.0;    ///< drop a mentioned class
    double count_vagueness = 0.0;    ///< exact count -> "several"
    double count_error = 0.0;        ///< +-30% miscount
    double hallucination = 0.0;      ///< invent an absent class
    double viewpoint_error = 0.0;    ///< wrong altitude/pitch wording
    double time_error = 0.0;         ///< day/night mixed up
    double detail_dropout = 0.0;     ///< skip position sentences
};

class SimulatedLlm {
public:
    SimulatedLlm(std::string name, LlmNoiseModel noise);

    /// Generates G_i for the scene under prompt template P_i.
    Caption describe(const scene::Scene& scene,
                     const PromptTemplate& prompt, util::Rng& rng) const;

    const std::string& name() const { return name_; }
    const LlmNoiseModel& noise() const { return noise_; }

    /// Ours: the keypoint-aware pipeline with near-faithful extraction.
    static SimulatedLlm keypoint_aware();
    /// Simulated Gemini: good but occasionally vague.
    static SimulatedLlm gemini();
    /// Simulated GPT-4o: slightly more omissions/hallucinations on
    /// dense aerial scenes.
    static SimulatedLlm gpt4o();
    /// Simulated BLIP captioner: short generic captions, most keypoints
    /// missing (the Fig. 3 "traditional prompt" behaviour).
    static SimulatedLlm blip_captioner();

private:
    std::string name_;
    LlmNoiseModel noise_;
};

/// Renders the caption text for already-chosen structured content.
/// Exposed for testing; `describe` is the normal entry point.
std::string render_caption_text(const Caption& caption,
                                const scene::Scene& scene);

}  // namespace aero::text
