#pragma once
// Tokenisation for captions. The vocabulary is closed over the caption
// grammar (scenario names, object classes, count words, viewpoint and
// lighting phrases), so every generated caption tokenises without
// surprises; unknown words map to <unk>.

#include <string>
#include <unordered_map>
#include <vector>

namespace aero::text {

class Vocabulary {
public:
    /// Builds the aerial caption vocabulary shared by all text models.
    static const Vocabulary& aerial();

    /// Token id for a (lowercased) word; <unk> id when absent.
    int id(const std::string& word) const;
    /// Word for an id ("<unk>" for out-of-range).
    const std::string& word(int id) const;

    int size() const { return static_cast<int>(words_.size()); }
    int unk_id() const { return unk_id_; }
    int pad_id() const { return pad_id_; }

    /// Lowercases, strips punctuation, splits, maps to ids.
    std::vector<int> encode(const std::string& text) const;
    /// Joins tokens back to a string (diagnostics).
    std::string decode(const std::vector<int>& ids) const;

private:
    explicit Vocabulary(const std::vector<std::string>& words);

    std::vector<std::string> words_;
    std::unordered_map<std::string, int> index_;
    int unk_id_ = 0;
    int pad_id_ = 0;
};

/// Lowercase and strip characters other than letters, digits and hyphens.
std::string normalize_word(const std::string& word);

}  // namespace aero::text
