#include "text/llm.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace aero::text {

namespace {

using scene::AltitudeBand;
using scene::PitchBand;
using scene::Scene;
using scene::ScenarioKind;
using scene::TimeOfDay;

std::string time_phrase(TimeOfDay time) {
    return time == TimeOfDay::kDay ? "A daytime aerial image"
                                   : "A nighttime aerial image";
}

std::string atmosphere_phrase(const Scene& scene) {
    if (scene.time == TimeOfDay::kNight) {
        return "under a dark sky with illuminated street lights";
    }
    if (scene.cloudiness > 0.4f) return "under a slightly cloudy sky";
    return "under a clear sunny sky";
}

std::string viewpoint_phrase(AltitudeBand altitude, PitchBand pitch) {
    std::string out = "captured from a ";
    switch (altitude) {
        case AltitudeBand::kLow: out += "low altitude"; break;
        case AltitudeBand::kMedium: out += "medium altitude"; break;
        case AltitudeBand::kHigh: out += "high vantage point"; break;
    }
    switch (pitch) {
        case PitchBand::kTopDown: out += " looking straight down"; break;
        case PitchBand::kSlightAngle:
            out += " at a slightly angled perspective";
            break;
        case PitchBand::kSideAngle: out += " from an angle to the side"; break;
    }
    return out;
}

std::string layout_phrase(ScenarioKind kind) {
    switch (kind) {
        case ScenarioKind::kHighway:
            return "The highway has multiple lanes and is lined with white "
                   "painted markings. To the left of the highway there is a "
                   "densely populated neighborhood with many buildings and "
                   "trees, and lush green trees cover a steep hillside on "
                   "the right side.";
        case ScenarioKind::kIntersection:
            return "Two roads with white markings cross at the center, with "
                   "buildings at the corners and trees near the edge.";
        case ScenarioKind::kResidential:
            return "A street runs through the neighborhood with buildings "
                   "on the left and right and trees along the upper edge.";
        case ScenarioKind::kMarket:
            return "Red-roofed stalls and buildings are lined along a "
                   "narrow street through the middle of the scene.";
        case ScenarioKind::kPark:
            return "A paved walkway crosses the park, lined with trees, and "
                   "a pond is visible near the lower right.";
        case ScenarioKind::kCampus:
            return "Paved walkways meet at the center of the campus with "
                   "grassy areas around and a few cars parked on the side "
                   "of the road.";
        case ScenarioKind::kParking:
            return "Rows of parked vehicles sit adjacent to a large "
                   "warehouse building along the upper edge.";
        case ScenarioKind::kPlaza:
            return "An open paved plaza with a fountain at the center, "
                   "buildings on the left and right and trees along the "
                   "upper and lower edges.";
    }
    return "";
}

std::string mentions_phrase(const std::vector<ObjectMention>& mentions) {
    if (mentions.empty()) return "";
    std::vector<std::string> parts;
    parts.reserve(mentions.size());
    for (const ObjectMention& m : mentions) {
        const std::string count = count_word(m.count, m.vague);
        const std::string noun = (m.count == 1 && !m.vague)
                                     ? scene::class_name(m.cls)
                                     : scene::class_plural(m.cls);
        parts.push_back(count + " " + noun);
    }
    std::string joined;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) joined += (i + 1 == parts.size()) ? " and " : ", ";
        joined += parts[i];
    }
    return "There are " + joined + " in the scene.";
}

}  // namespace

std::string render_caption_text(const Caption& caption, const Scene& scene) {
    std::vector<std::string> sentences;

    std::string opening = caption.mentions_time
                              ? time_phrase(caption.time)
                              : std::string("An aerial image");
    opening += " of a ";
    opening += scene::scenario_name(caption.scenario);
    if (caption.mentions_time) {
        opening += " " + atmosphere_phrase(scene);
    }
    if (caption.mentions_viewpoint) {
        opening += ", " + viewpoint_phrase(caption.altitude, caption.pitch);
    }
    opening += ".";
    sentences.push_back(opening);

    const std::string mentions = mentions_phrase(caption.mentions);
    if (!mentions.empty()) sentences.push_back(mentions);

    if (caption.mentions_positions) {
        sentences.push_back(layout_phrase(caption.scenario));
    }
    return util::join(sentences, " ");
}

SimulatedLlm::SimulatedLlm(std::string name, LlmNoiseModel noise)
    : name_(std::move(name)), noise_(noise) {}

Caption SimulatedLlm::describe(const Scene& scene,
                               const PromptTemplate& prompt,
                               util::Rng& rng) const {
    Caption caption;
    caption.scenario = scene.kind;

    // Time of day: covered when the prompt asks; unprompted captioners
    // mention it only occasionally -- and may get it wrong either way.
    caption.time = scene.time;
    caption.mentions_time = prompt.ask_time_of_day || rng.bernoulli(0.3);
    if (caption.mentions_time && rng.bernoulli(noise_.time_error)) {
        caption.time = caption.time == TimeOfDay::kDay ? TimeOfDay::kNight
                                                       : TimeOfDay::kDay;
    }

    // Viewpoint.
    caption.altitude = scene::altitude_band(scene.camera);
    caption.pitch = scene::pitch_band(scene.camera);
    caption.mentions_viewpoint = prompt.ask_viewpoint || rng.bernoulli(0.2);
    if (caption.mentions_viewpoint &&
        rng.bernoulli(noise_.viewpoint_error)) {
        caption.altitude = static_cast<AltitudeBand>(rng.uniform_int(0, 2));
        caption.pitch = static_cast<PitchBand>(rng.uniform_int(0, 2));
    }

    // Object mentions.
    if (prompt.ask_object_list || rng.bernoulli(0.5)) {
        for (ObjectMention mention : true_mentions(scene)) {
            if (rng.bernoulli(noise_.object_omission)) continue;
            if (rng.bernoulli(noise_.count_error)) {
                const double factor = rng.uniform(0.7, 1.3);
                mention.count = std::max(
                    1, static_cast<int>(mention.count * factor + 0.5));
            }
            mention.vague = rng.bernoulli(noise_.count_vagueness);
            caption.mentions.push_back(mention);
        }
        if (rng.bernoulli(noise_.hallucination)) {
            ObjectMention ghost;
            ghost.cls = static_cast<scene::ObjectClass>(
                rng.uniform_int(0, scene::kNumObjectClasses - 1));
            ghost.count = rng.uniform_int(1, 4);
            ghost.vague = true;
            caption.mentions.push_back(ghost);
        }
    }

    // Spatial arrangement sentences.
    caption.mentions_positions =
        (prompt.ask_positions || rng.bernoulli(0.2)) &&
        !rng.bernoulli(noise_.detail_dropout);

    caption.text = render_caption_text(caption, scene);
    return caption;
}

SimulatedLlm SimulatedLlm::keypoint_aware() {
    LlmNoiseModel noise;
    noise.object_omission = 0.02;
    noise.count_vagueness = 0.03;
    noise.count_error = 0.02;
    return SimulatedLlm("AeroDiffusion", noise);
}

SimulatedLlm SimulatedLlm::gemini() {
    LlmNoiseModel noise;
    noise.object_omission = 0.15;
    noise.count_vagueness = 0.30;
    noise.count_error = 0.15;
    noise.hallucination = 0.03;
    noise.viewpoint_error = 0.10;
    noise.detail_dropout = 0.15;
    return SimulatedLlm("Gemini", noise);
}

SimulatedLlm SimulatedLlm::gpt4o() {
    LlmNoiseModel noise;
    noise.object_omission = 0.25;
    noise.count_vagueness = 0.40;
    noise.count_error = 0.20;
    noise.hallucination = 0.06;
    noise.viewpoint_error = 0.15;
    noise.time_error = 0.02;
    noise.detail_dropout = 0.25;
    return SimulatedLlm("GPT-4o", noise);
}

SimulatedLlm SimulatedLlm::blip_captioner() {
    LlmNoiseModel noise;
    noise.object_omission = 0.65;
    noise.count_vagueness = 0.95;
    noise.count_error = 0.40;
    noise.viewpoint_error = 0.40;
    noise.time_error = 0.08;
    noise.detail_dropout = 0.85;
    return SimulatedLlm("BLIP", noise);
}

}  // namespace aero::text
