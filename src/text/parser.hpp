#pragma once
// Caption parser: recovers the structured keypoints (time of day,
// viewpoint bands, scenario, object mentions) from caption TEXT. The
// inverse of the caption grammar, used for (a) round-trip property
// testing of the captioners and (b) user-facing workflows where a
// caption is edited as text and the pipeline needs its structure back
// (e.g. validating a viewpoint-transition edit).

#include <optional>

#include "text/caption.hpp"

namespace aero::text {

/// Best-effort structured parse of a caption produced by the grammar in
/// llm.cpp (robust to missing sentences: absent keypoints stay at their
/// "not mentioned" defaults).
Caption parse_caption(const std::string& text);

/// Word -> count used by the mention parser ("three" -> 3, "several" ->
/// approximate with the vague flag). Returns nullopt for non-count words.
struct ParsedCount {
    int count = 0;
    bool vague = false;
};
std::optional<ParsedCount> parse_count_word(const std::string& word);

/// Scenario recognition from caption text; nullopt when no scenario
/// phrase matches.
std::optional<scene::ScenarioKind> parse_scenario(const std::string& text);

}  // namespace aero::text
