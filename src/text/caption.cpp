#include "text/caption.hpp"

#include <algorithm>

namespace aero::text {

PromptTemplate PromptTemplate::keypoint_aware() { return PromptTemplate{}; }

PromptTemplate PromptTemplate::traditional() {
    PromptTemplate p;
    p.ask_time_of_day = false;
    p.ask_viewpoint = false;
    p.ask_object_list = false;
    p.ask_positions = false;
    p.chain_of_thought = false;
    return p;
}

std::string PromptTemplate::render() const {
    if (!ask_time_of_day && !ask_viewpoint && !ask_object_list &&
        !ask_positions) {
        return "Write a description for this image.";
    }
    std::string prompt = "Write a description for this image";
    if (ask_time_of_day) {
        prompt +=
            ", starting with 'A nighttime aerial image' or 'A daytime aerial "
            "image', highlighting the time of day and atmospheric conditions";
    }
    if (ask_viewpoint) {
        prompt +=
            ". Detail the drone's viewpoint, indicating its perspective on "
            "the scene";
    }
    if (ask_object_list) {
        prompt += ", and mention the objects present o_1, o_2, ..., o_n";
    }
    if (ask_positions) {
        prompt +=
            ", describing their arrangement and positions relative to the "
            "drone's perspective and the location within the scene";
    }
    prompt += ".";
    if (chain_of_thought) {
        prompt += " Think step by step about each keypoint before writing.";
    }
    return prompt;
}

float keypoint_coverage(const Caption& caption) {
    int covered = 0;
    if (caption.mentions_time) ++covered;
    if (caption.mentions_viewpoint) ++covered;
    if (!caption.mentions.empty()) ++covered;
    if (caption.mentions_positions) ++covered;
    return static_cast<float>(covered) / 4.0f;
}

std::string count_word(int count, bool vague) {
    if (vague) {
        if (count <= 3) return "a-few";
        if (count <= 8) return "several";
        return "many";
    }
    static const char* kNumbers[] = {"no",    "one", "two",   "three", "four",
                                     "five",  "six", "seven", "eight", "nine",
                                     "ten",   "eleven", "twelve"};
    if (count <= 12) return kNumbers[count];
    if (count <= 24) return "dozens";
    return "numerous";
}

std::vector<ObjectMention> true_mentions(const scene::Scene& scene) {
    std::vector<int> counts(scene::kNumObjectClasses, 0);
    for (const scene::SceneObject& obj : scene.objects) {
        counts[static_cast<std::size_t>(obj.cls)]++;
    }
    std::vector<ObjectMention> mentions;
    for (int c = 0; c < scene::kNumObjectClasses; ++c) {
        if (counts[static_cast<std::size_t>(c)] > 0) {
            mentions.push_back({static_cast<scene::ObjectClass>(c),
                                counts[static_cast<std::size_t>(c)], false});
        }
    }
    // Most prominent classes first, mirroring how captions order content.
    std::sort(mentions.begin(), mentions.end(),
              [](const ObjectMention& a, const ObjectMention& b) {
                  return a.count > b.count;
              });
    return mentions;
}

}  // namespace aero::text
