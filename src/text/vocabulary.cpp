#include "text/vocabulary.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace aero::text {

namespace {

std::vector<std::string> build_word_list() {
    // Core grammar of the caption generators. Order defines token ids.
    return {
        "<pad>", "<unk>",
        // articles / glue
        "a", "an", "the", "of", "and", "with", "from", "is", "are", "there",
        "its", "in", "on", "at", "to", "along", "near", "around", "beside",
        "under", "above", "across", "into", "by",
        // time / weather
        "daytime", "nighttime", "aerial", "image", "view", "sky", "clear",
        "cloudy", "overcast", "sunny", "dark", "illuminated", "lights",
        "shadows", "lighting", "atmospheric", "conditions", "muted",
        // viewpoint
        "drone", "captured", "camera", "hovering", "vantage", "point",
        "altitude", "high", "low", "medium", "top-down", "straight", "down",
        "oblique", "slight", "slightly", "angled", "angle", "side",
        "perspective", "looking", "directly", "center", "birds-eye",
        "positioned", "viewpoint", "scene", "depth", "layout", "reveals",
        // scenarios
        "busy", "highway", "urban", "intersection", "residential",
        "neighborhood", "bustling", "market", "street", "tranquil", "park",
        "paved", "campus", "logistics", "parking", "lot", "open", "plaza",
        "hub",
        // layout
        "road", "roads", "lanes", "multiple", "lined", "white", "painted",
        "markings", "buildings", "building", "trees", "tree", "grassy",
        "areas", "walkway", "walkways", "pond", "ponds", "water",
        "fountain", "stalls", "streets", "edges", "intersections",
        "highways", "parks",
        "red-roofed", "rows", "parked", "adjacent", "warehouse", "hillside",
        "lush", "green", "steep", "densely", "populated", "crosswalk",
        "traveling", "walking", "moving", "stationary", "visible",
        "distance", "left", "right", "north", "south", "east", "west",
        "upper", "lower", "middle", "edge", "corner", "corners",
        "throughout", "scattered", "crossing", "has", "have", "cover",
        "covers", "cross", "crosses", "runs", "through", "narrow", "meet",
        "meets", "few", "sit", "sits", "lane", "it", "that",
        // object classes (singular + plural)
        "pedestrian", "pedestrians", "person", "people", "bicycle",
        "bicycles", "car", "cars", "van", "vans", "truck", "trucks",
        "tricycle", "tricycles", "awning-tricycle", "awning-tricycles",
        "bus", "buses", "motorcycle", "motorcycles", "object", "objects",
        "vehicles", "crowd",
        // counts
        "no", "one", "two", "three", "four", "five", "six", "seven",
        "eight", "nine", "ten", "eleven", "twelve", "several", "a-few",
        "many", "dozens", "numerous", "some", "more",
        // misc adjectives used by noisy captioners
        "large", "small", "long", "wide", "active", "commercial",
        "transportation", "operations", "indicative", "typical", "various",
        "general", "complex",
    };
}

}  // namespace

std::string normalize_word(const std::string& word) {
    std::string out;
    out.reserve(word.size());
    for (char c : word) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isalnum(uc) || c == '-' || c == '<' || c == '>') {
            out.push_back(
                static_cast<char>(std::tolower(uc)));
        }
    }
    return out;
}

Vocabulary::Vocabulary(const std::vector<std::string>& words) : words_(words) {
    for (int i = 0; i < static_cast<int>(words_.size()); ++i) {
        index_.emplace(words_[static_cast<std::size_t>(i)], i);
    }
    pad_id_ = index_.at("<pad>");
    unk_id_ = index_.at("<unk>");
}

const Vocabulary& Vocabulary::aerial() {
    static const Vocabulary instance(build_word_list());
    return instance;
}

int Vocabulary::id(const std::string& word) const {
    const auto it = index_.find(word);
    return it == index_.end() ? unk_id_ : it->second;
}

const std::string& Vocabulary::word(int token_id) const {
    if (token_id < 0 || token_id >= size()) {
        return words_[static_cast<std::size_t>(unk_id_)];
    }
    return words_[static_cast<std::size_t>(token_id)];
}

std::vector<int> Vocabulary::encode(const std::string& text) const {
    std::vector<int> ids;
    for (const std::string& raw : util::split_whitespace(text)) {
        const std::string norm = normalize_word(raw);
        if (!norm.empty()) ids.push_back(id(norm));
    }
    return ids;
}

std::string Vocabulary::decode(const std::vector<int>& ids) const {
    std::vector<std::string> parts;
    parts.reserve(ids.size());
    for (int token_id : ids) parts.push_back(word(token_id));
    return util::join(parts, " ");
}

}  // namespace aero::text
