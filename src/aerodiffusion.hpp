#pragma once
// Umbrella header: the public API of the AeroDiffusion library.
//
//   #include "aerodiffusion.hpp"
//
// pulls in everything an application needs: the synthetic paired
// text-aerial dataset, the shared substrate (CLIP / detector /
// autoencoder), the AeroDiffusion pipeline and its baseline variants,
// and the evaluation metrics. Individual subsystem headers remain
// available for finer-grained inclusion.

#include "baselines/models.hpp"       // Table-I baselines + model interface
#include "core/condition.hpp"         // condition network (Eq. 5)
#include "core/config.hpp"            // experiment budgets
#include "core/pipeline.hpp"          // AeroDiffusionPipeline
#include "core/substrate.hpp"         // shared pretrained substrate
#include "detect/detector.hpp"        // grid detector + ROI extraction
#include "detect/evaluation.hpp"      // detection AP / mAP
#include "diffusion/sampler.hpp"      // DDPM / DDIM(+CFG, Heun, edit, inpaint)
#include "embed/clip.hpp"             // contrastive dual encoder + CLIP score
#include "embed/fusion.hpp"           // BLIP fusion + region augmenter
#include "image/image.hpp"            // float RGB images + PPM I/O
#include "metrics/metrics.hpp"        // FID / KID / PSNR
#include "metrics/prd.hpp"            // generative precision / recall
#include "scene/dataset.hpp"          // synthetic aerial dataset
#include "text/llm.hpp"               // simulated LLM captioners
#include "text/parser.hpp"            // caption -> structure parser
