#include "embed/fusion.hpp"

#include <cassert>

namespace aero::embed {

namespace ag = aero::autograd;

BlipFusion::BlipFusion(const EmbedConfig& config, util::Rng& rng)
    : norm_text_(config.dim),
      cross_(config.dim, config.heads, rng),
      norm_out_(config.dim),
      mlp_(config.dim, config.dim * 2, config.dim, rng),
      proj_(config.dim, config.dim, rng) {
    register_child(norm_text_);
    register_child(cross_);
    register_child(norm_out_);
    register_child(mlp_);
    register_child(proj_);
    // Start as an informative map: attention fades in on the residual
    // path and the head passes the pooled text tokens through unchanged,
    // so C_xg carries real signal from the first training step.
    cross_.init_output_zero();
    proj_.init_identity();
}

Var BlipFusion::forward(const Var& image_tokens, const Var& text_tokens) const {
    // Text queries read visual content (BLIP's image-grounded text encoder).
    Var h = ag::add(text_tokens,
                    cross_.forward(norm_text_.forward(text_tokens),
                                   image_tokens));
    h = ag::add(h, mlp_.forward(norm_out_.forward(h)));
    return proj_.forward(mean_rows(h));  // C_xg, [1, dim]
}

RegionFeatureAugmenter::RegionFeatureAugmenter(const EmbedConfig& config,
                                               util::Rng& rng)
    : norm_roi_(config.dim),
      align_cross_(config.dim, config.heads, rng),
      norm_set_(config.dim),
      fuse_self_(config.dim, config.heads, rng),
      proj_(config.dim, config.dim, rng) {
    register_child(norm_roi_);
    register_child(align_cross_);
    register_child(norm_set_);
    register_child(fuse_self_);
    register_child(proj_);
    // f̂_X starts as the plain global image feature (attention fades in,
    // head is identity), so the row is informative from step one.
    align_cross_.init_output_zero();
    fuse_self_.init_output_zero();
    proj_.init_identity();
}

Var RegionFeatureAugmenter::forward_tokens(const Var& global_feature,
                                           const Var& roi_features,
                                           const Var& label_embeddings) const {
    assert(global_feature.value().dim(0) == 1);
    assert(roi_features.value().dim(0) == label_embeddings.value().dim(0));

    // Cross-modal alignment: each region feature attends to the label
    // text embeddings, producing [f_X,1 .. f_X,R].
    const Var aligned =
        ag::add(roi_features, align_cross_.forward(
                                  norm_roi_.forward(roi_features),
                                  label_embeddings));

    // F = [f_X ; f_X,1 ; ... ; f_X,R], fused by multi-head self-attention
    // (Eq. 2-3), letting the model weigh region relevance dynamically.
    const Var set = ag::concat({global_feature, aligned}, 0);
    const Var fused = ag::add(set, fuse_self_.forward(norm_set_.forward(set)));
    return proj_.forward(fused);
}

Var RegionFeatureAugmenter::forward(const Var& global_feature,
                                    const Var& roi_features,
                                    const Var& label_embeddings) const {
    // The enriched source-image representation is the (residual) global
    // slot after fusion.
    return ag::slice(
        forward_tokens(global_feature, roi_features, label_embeddings), 0, 0,
        1);
}

Var RegionFeatureAugmenter::forward(const Var& global_feature) const {
    return proj_.forward(global_feature);
}

}  // namespace aero::embed
