#include "embed/clip.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aero::embed {

namespace ag = aero::autograd;

ClipModel::ClipModel(const EmbedConfig& config, util::Rng& rng)
    : config_(config),
      image_encoder_(config, rng),
      text_encoder_(config, rng) {
    register_child(image_encoder_);
    register_child(text_encoder_);
    // exp(2.0) ~ 7.4: a moderate starting temperature.
    logit_scale_ = register_parameter(Tensor::full({1, 1}, 2.0f));
}

Var ClipModel::embed_images(const Var& images) const {
    return normalize_rows(image_encoder_.forward(images));
}

Var ClipModel::embed_text(const std::vector<int>& token_ids) const {
    return normalize_rows(text_encoder_.forward(token_ids));
}

Var ClipModel::embed_texts(
    const std::vector<std::vector<int>>& batch) const {
    return normalize_rows(text_encoder_.forward_batch(batch));
}

Var ClipModel::contrastive_loss(
    const Var& images, const std::vector<std::vector<int>>& captions) const {
    const int n = images.value().dim(0);
    assert(static_cast<int>(captions.size()) == n);
    const Var img = embed_images(images);     // [N, d]
    const Var txt = embed_texts(captions);    // [N, d]

    // logits = exp(logit_scale) * img @ txt^T
    const float scale = std::exp(
        std::clamp(logit_scale_.value()[0], 0.0f, 4.0f));
    const Var logits = ag::scale(ag::matmul(img, ag::transpose2d(txt)), scale);

    std::vector<int> diagonal(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) diagonal[static_cast<std::size_t>(i)] = i;
    const Var loss_i2t = ag::cross_entropy_rows(logits, diagonal);
    const Var loss_t2i =
        ag::cross_entropy_rows(ag::transpose2d(logits), diagonal);
    return ag::scale(ag::add(loss_i2t, loss_t2i), 0.5f);
}

tensor::Tensor ClipModel::embed_image_eval(const image::Image& img) const {
    image::Image sized = img;
    if (img.width() != config_.image_size ||
        img.height() != config_.image_size) {
        sized = image::resize_bilinear(img, config_.image_size,
                                       config_.image_size);
    }
    const Var images = Var::constant(sized.to_tensor_chw().reshaped(
        {1, 3, config_.image_size, config_.image_size}));
    return embed_images(images).value();
}

tensor::Tensor ClipModel::embed_text_eval(const std::string& caption) const {
    const std::vector<int> ids = text::Vocabulary::aerial().encode(caption);
    return embed_text(ids).value();
}

ClipTrainStats train_clip(ClipModel& clip,
                          const std::vector<image::Image>& images,
                          const std::vector<std::string>& captions,
                          const ClipTrainConfig& config, util::Rng& rng) {
    assert(images.size() == captions.size() && !images.empty());
    const int size = clip.config().image_size;
    const text::Vocabulary& vocab = text::Vocabulary::aerial();

    std::vector<Tensor> image_tensors;
    std::vector<std::vector<int>> token_lists;
    image_tensors.reserve(images.size());
    token_lists.reserve(captions.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
        image::Image sized = images[i];
        if (sized.width() != size) {
            sized = image::resize_bilinear(sized, size, size);
        }
        image_tensors.push_back(
            sized.to_tensor_chw().reshaped({1, 3, size, size}));
        token_lists.push_back(vocab.encode(captions[i]));
    }

    nn::Adam opt(clip.parameters(), {.lr = config.lr, .weight_decay = 1e-5f});
    ClipTrainStats stats;
    const int batch = std::min<int>(config.batch_size,
                                    static_cast<int>(images.size()));
    for (int step = 0; step < config.steps; ++step) {
        std::vector<Var> batch_images;
        std::vector<std::vector<int>> batch_captions;
        // Sample distinct indices so no duplicate positives confuse the
        // contrastive objective.
        std::vector<int> order(images.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = static_cast<int>(i);
        }
        rng.shuffle(order);
        for (int b = 0; b < batch; ++b) {
            const auto i = static_cast<std::size_t>(order[static_cast<std::size_t>(b)]);
            batch_images.push_back(Var::constant(image_tensors[i]));
            batch_captions.push_back(token_lists[i]);
        }
        opt.zero_grad();
        const Var loss = clip.contrastive_loss(ag::concat(batch_images, 0),
                                               batch_captions);
        loss.backward();
        opt.clip_grad_norm(5.0f);
        opt.step();
        if (step == 0) stats.first_loss = loss.value()[0];
        stats.final_loss = loss.value()[0];
    }
    return stats;
}

float clip_score(const ClipModel& clip, const image::Image& img,
                 const std::string& caption) {
    const tensor::Tensor a = clip.embed_image_eval(img);
    const tensor::Tensor b = clip.embed_text_eval(caption);
    float dot = 0.0f;
    for (int i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return 100.0f * std::max(dot, 0.0f);
}

}  // namespace aero::embed
