#pragma once
// Contrastive dual encoder: the CLIP substitute used for (a) the C_g
// condition component (Eq. 5), (b) the CLIP-score metric of Table II,
// and (c) viewpoint-transition text guidance (Table III).

#include "embed/encoders.hpp"
#include "nn/optimizer.hpp"
#include "scene/dataset.hpp"

namespace aero::embed {

class ClipModel : public nn::Module {
public:
    ClipModel(const EmbedConfig& config, util::Rng& rng);

    /// L2-normalised image embeddings [N, dim].
    Var embed_images(const Var& images) const;
    /// L2-normalised text embedding for one caption [1, dim].
    Var embed_text(const std::vector<int>& token_ids) const;
    /// L2-normalised text embeddings [N, dim].
    Var embed_texts(const std::vector<std::vector<int>>& batch) const;

    /// Symmetric InfoNCE loss over matched (image, caption) rows.
    Var contrastive_loss(const Var& images,
                         const std::vector<std::vector<int>>& captions) const;

    /// Plain (ungraded) embedding of one image, convenience for metrics.
    tensor::Tensor embed_image_eval(const image::Image& img) const;
    tensor::Tensor embed_text_eval(const std::string& caption) const;

    const EmbedConfig& config() const { return config_; }
    const ImageEncoder& image_encoder() const { return image_encoder_; }
    const TextEncoder& text_encoder() const { return text_encoder_; }

private:
    EmbedConfig config_;
    ImageEncoder image_encoder_;
    TextEncoder text_encoder_;
    Var logit_scale_;  ///< learned temperature (log-scale), scalar
};

struct ClipTrainConfig {
    int steps = 150;
    int batch_size = 8;
    float lr = 2e-3f;
};

struct ClipTrainStats {
    float first_loss = 0.0f;
    float final_loss = 0.0f;
};

/// Trains CLIP on (image, caption) pairs.
ClipTrainStats train_clip(ClipModel& clip,
                          const std::vector<image::Image>& images,
                          const std::vector<std::string>& captions,
                          const ClipTrainConfig& config, util::Rng& rng);

/// CLIP score (x100, as reported in the paper): cosine similarity of the
/// image and caption embeddings, clamped at 0.
float clip_score(const ClipModel& clip, const image::Image& img,
                 const std::string& caption);

}  // namespace aero::embed
