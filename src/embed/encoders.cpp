#include "embed/encoders.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace aero::embed {

namespace ag = aero::autograd;

ImageEncoder::ImageEncoder(const EmbedConfig& config, util::Rng& rng)
    : config_(config),
      conv1_(3, config.dim / 2, 3, 2, 1, rng),
      norm1_(config.dim / 2, 4),
      conv2_(config.dim / 2, config.dim, 3, 2, 1, rng),
      norm2_(config.dim, 4),
      conv3_(config.dim, config.dim, 3, 2, 1, rng),
      proj_(config.dim, config.dim, rng) {
    register_child(conv1_);
    register_child(norm1_);
    register_child(conv2_);
    register_child(norm2_);
    register_child(conv3_);
    register_child(proj_);
}

Var ImageEncoder::trunk(const Var& images) const {
    Var h = ag::silu(norm1_.forward(conv1_.forward(images)));
    h = ag::silu(norm2_.forward(conv2_.forward(h)));
    return ag::silu(conv3_.forward(h));
}

Var ImageEncoder::forward(const Var& images) const {
    const Var features = trunk(images);            // [N, dim, s, s]
    const Var pooled = ag::global_avg_pool(features);  // [N, dim]
    return proj_.forward(pooled);
}

Var ImageEncoder::forward_tokens(const Var& image) const {
    assert(image.value().dim(0) == 1);
    const Var features = trunk(image);  // [1, dim, s, s]
    const int dim = features.value().dim(1);
    const int tokens = features.value().dim(2) * features.value().dim(3);
    // [1, dim, s, s] -> [dim, tokens] -> [tokens, dim]
    const Var flat = ag::reshape(features, {dim, tokens});
    return proj_.forward(ag::transpose2d(flat));
}

TextEncoder::TextEncoder(const EmbedConfig& config, util::Rng& rng)
    : config_(config),
      token_embedding_(text::Vocabulary::aerial().size(), config.dim, rng),
      position_embedding_(config.max_tokens, config.dim, rng),
      block_(config.dim, config.heads, rng),
      proj_(config.dim, config.dim, rng) {
    register_child(token_embedding_);
    register_child(position_embedding_);
    register_child(block_);
    register_child(proj_);
}

Var TextEncoder::forward_tokens(const std::vector<int>& token_ids) const {
    std::vector<int> ids = token_ids;
    if (ids.empty()) ids.push_back(text::Vocabulary::aerial().pad_id());
    if (static_cast<int>(ids.size()) > config_.max_tokens) {
        ids.resize(static_cast<std::size_t>(config_.max_tokens));
    }
    std::vector<int> positions(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        positions[i] = static_cast<int>(i);
    }
    const Var tokens = ag::add(token_embedding_.forward(ids),
                               position_embedding_.forward(positions));
    return block_.forward(tokens);
}

Var TextEncoder::forward(const std::vector<int>& token_ids) const {
    return proj_.forward(mean_rows(forward_tokens(token_ids)));
}

Var TextEncoder::forward_batch(
    const std::vector<std::vector<int>>& batch) const {
    std::vector<Var> rows;
    rows.reserve(batch.size());
    for (const std::vector<int>& ids : batch) rows.push_back(forward(ids));
    return ag::concat(rows, 0);
}

Var normalize_rows(const Var& x, float eps) {
    assert(x.value().rank() == 2);
    const int n = x.value().dim(0);
    const int d = x.value().dim(1);

    Tensor out({n, d});
    std::vector<float> inv_norms(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const float* row = x.value().data() + i * d;
        float sum = 0.0f;
        for (int j = 0; j < d; ++j) sum += row[j] * row[j];
        const float inv = 1.0f / std::sqrt(sum + eps);
        inv_norms[static_cast<std::size_t>(i)] = inv;
        for (int j = 0; j < d; ++j) out[i * d + j] = row[j] * inv;
    }

    auto xn = x.node();
    const Tensor normalized = out;
    return Var::make(
        std::move(out), {x},
        [xn, normalized, inv_norms, n, d](const Tensor& g) {
            // d(x/||x||)/dx applied to g: (g - y (y . g)) / ||x||
            Tensor dx({n, d});
            for (int i = 0; i < n; ++i) {
                const float* y = normalized.data() + i * d;
                const float* gi = g.data() + i * d;
                float dot = 0.0f;
                for (int j = 0; j < d; ++j) dot += y[j] * gi[j];
                const float inv = inv_norms[static_cast<std::size_t>(i)];
                float* o = dx.data() + i * d;
                for (int j = 0; j < d; ++j) {
                    o[j] = (gi[j] - y[j] * dot) * inv;
                }
            }
            xn->accumulate(dx);
        });
}

Var mean_rows(const Var& x) {
    const int n = x.value().dim(0);
    Tensor ones({1, n});
    for (int i = 0; i < n; ++i) ones[i] = 1.0f / static_cast<float>(n);
    return ag::matmul(Var::constant(std::move(ones)), x);
}

}  // namespace aero::embed
