#pragma once
// Vision and text encoders underlying the CLIP / BLIP substitutes.
// The image tower is a small conv net that exposes both a pooled global
// feature (f_X in the paper) and a token grid (for cross-attention
// fusion); the text tower embeds caption tokens and contextualises them
// with one transformer block.

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "text/vocabulary.hpp"

namespace aero::embed {

using autograd::Var;
using tensor::Tensor;

struct EmbedConfig {
    int dim = 32;         ///< shared embedding width
    int image_size = 32;  ///< input resolution of the image tower
    int heads = 4;
    int max_tokens = 64;  ///< captions are truncated to this length
};

/// Conv tower: [N,3,H,W] -> pooled [N,dim] and token grid [T,dim] (single
/// image) for fusion.
class ImageEncoder : public nn::Module {
public:
    ImageEncoder(const EmbedConfig& config, util::Rng& rng);

    /// Pooled global embedding for a batch: [N, dim].
    Var forward(const Var& images) const;
    /// Token features of ONE image ([tokens, dim], tokens = (size/8)^2).
    Var forward_tokens(const Var& image) const;

    const EmbedConfig& config() const { return config_; }

private:
    /// Shared trunk producing the final feature map [N, dim, s, s].
    Var trunk(const Var& images) const;

    EmbedConfig config_;
    nn::Conv2d conv1_;
    nn::GroupNorm norm1_;
    nn::Conv2d conv2_;
    nn::GroupNorm norm2_;
    nn::Conv2d conv3_;
    nn::Linear proj_;
};

/// Token-embedding text tower with one transformer block.
class TextEncoder : public nn::Module {
public:
    TextEncoder(const EmbedConfig& config, util::Rng& rng);

    /// Contextualised token features [T, dim] for one token sequence.
    Var forward_tokens(const std::vector<int>& token_ids) const;
    /// Mean-pooled sentence embedding [1, dim].
    Var forward(const std::vector<int>& token_ids) const;
    /// Batch of pooled embeddings [N, dim].
    Var forward_batch(const std::vector<std::vector<int>>& batch) const;

    const EmbedConfig& config() const { return config_; }

private:
    EmbedConfig config_;
    nn::Embedding token_embedding_;
    nn::Embedding position_embedding_;
    nn::TransformerBlock block_;
    nn::Linear proj_;
};

/// L2-normalises each row of [N, dim] (autograd-friendly).
Var normalize_rows(const Var& x, float eps = 1e-6f);

/// Mean over rows: [N, dim] -> [1, dim].
Var mean_rows(const Var& x);

}  // namespace aero::embed
