#pragma once
// Multi-modal fusion blocks:
//  * BlipFusion      -- the BLIP substitute: deep image-text fusion via
//                       cross-attention, producing C_xg = BLIP(X_i, G_i).
//  * RegionFeatureAugmenter -- Sec. IV-B / Eq. 2-3: aligns ROI visual
//                       features with their label-text embeddings, then
//                       fuses [f_X, f_X1..f_XR] with multi-head
//                       self-attention into the enriched f̂_X.

#include "embed/encoders.hpp"
#include "nn/attention.hpp"

namespace aero::embed {

class BlipFusion : public nn::Module {
public:
    BlipFusion(const EmbedConfig& config, util::Rng& rng);

    /// C_xg from image tokens [Ti, dim] and text tokens [Tt, dim]:
    /// text queries attend to image content; pooled to [1, dim].
    Var forward(const Var& image_tokens, const Var& text_tokens) const;

private:
    nn::LayerNorm norm_text_;
    nn::MultiHeadAttention cross_;
    nn::LayerNorm norm_out_;
    nn::Mlp mlp_;
    nn::Linear proj_;
};

class RegionFeatureAugmenter : public nn::Module {
public:
    RegionFeatureAugmenter(const EmbedConfig& config, util::Rng& rng);

    /// f̂_X from the global image feature [1, dim], ROI features [R, dim]
    /// and ROI label-text embeddings [R, dim]. With R = 0 the global
    /// feature is passed through the output projection unchanged in
    /// structure (so ablations without detection share the head).
    Var forward(const Var& global_feature, const Var& roi_features,
                const Var& label_embeddings) const;

    /// The full attention-enhanced set of Eq. 2-3, projected: row 0 is
    /// the enriched f̂_X slot, rows 1..R the enhanced region features.
    /// Feeding all rows to the denoiser's cross-attention preserves
    /// object-level detail that pooling into a single f̂_X would discard.
    Var forward_tokens(const Var& global_feature, const Var& roi_features,
                       const Var& label_embeddings) const;

    /// Convenience overload for the no-detection ablation.
    Var forward(const Var& global_feature) const;

private:
    nn::LayerNorm norm_roi_;
    nn::MultiHeadAttention align_cross_;  ///< ROI <- label alignment
    nn::LayerNorm norm_set_;
    nn::MultiHeadAttention fuse_self_;    ///< Eq. 2-3 over [f_X, f_X1..f_XR]
    nn::Linear proj_;
};

}  // namespace aero::embed
