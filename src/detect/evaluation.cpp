#include "detect/evaluation.hpp"

#include <algorithm>

namespace aero::detect {

ClassAp average_precision(
    std::vector<ScoredDetection> detections,
    const std::vector<std::vector<BoundingBox>>& gt_boxes_per_image,
    scene::ObjectClass cls, float iou_threshold) {
    ClassAp result;

    // Ground truth of this class per image, with matched flags.
    std::vector<std::vector<BoundingBox>> gt(gt_boxes_per_image.size());
    std::vector<std::vector<bool>> used(gt_boxes_per_image.size());
    for (std::size_t i = 0; i < gt_boxes_per_image.size(); ++i) {
        for (const BoundingBox& box : gt_boxes_per_image[i]) {
            if (box.cls == cls) gt[i].push_back(box);
        }
        used[i].assign(gt[i].size(), false);
        result.gt_count += static_cast<int>(gt[i].size());
    }
    result.detection_count = static_cast<int>(detections.size());
    if (result.gt_count == 0) return result;

    // Greedy matching in score order.
    std::sort(detections.begin(), detections.end(),
              [](const ScoredDetection& a, const ScoredDetection& b) {
                  return a.box.score > b.box.score;
              });

    int true_positives = 0;
    int false_positives = 0;
    std::vector<PrPoint> curve;
    curve.reserve(detections.size());
    for (const ScoredDetection& det : detections) {
        const auto image = static_cast<std::size_t>(det.image_id);
        bool matched = false;
        if (image < gt.size()) {
            float best_iou = iou_threshold;
            int best = -1;
            for (std::size_t g = 0; g < gt[image].size(); ++g) {
                if (used[image][g]) continue;
                const float overlap = iou(det.box, gt[image][g]);
                if (overlap >= best_iou) {
                    best_iou = overlap;
                    best = static_cast<int>(g);
                }
            }
            if (best >= 0) {
                used[image][static_cast<std::size_t>(best)] = true;
                matched = true;
            }
        }
        if (matched) {
            ++true_positives;
        } else {
            ++false_positives;
        }
        curve.push_back(
            {static_cast<float>(true_positives) /
                 static_cast<float>(result.gt_count),
             static_cast<float>(true_positives) /
                 static_cast<float>(true_positives + false_positives)});
    }
    result.curve = curve;

    // 11-point interpolated AP.
    float ap = 0.0f;
    for (int k = 0; k <= 10; ++k) {
        const float recall_level = static_cast<float>(k) / 10.0f;
        float best_precision = 0.0f;
        for (const PrPoint& point : curve) {
            if (point.recall >= recall_level) {
                best_precision = std::max(best_precision, point.precision);
            }
        }
        ap += best_precision;
    }
    result.ap = ap / 11.0f;
    return result;
}

MapReport evaluate_map(const GridDetector& detector,
                       const std::vector<scene::AerialSample>& samples,
                       float objectness_threshold, float iou_threshold) {
    // Collect detections once.
    std::vector<std::vector<ScoredDetection>> per_class_detections(
        static_cast<std::size_t>(scene::kNumObjectClasses));
    std::vector<std::vector<BoundingBox>> gt_per_image;
    gt_per_image.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        gt_per_image.push_back(samples[i].gt_boxes);
        for (const BoundingBox& box :
             detector.detect(samples[i].image, objectness_threshold)) {
            per_class_detections[static_cast<std::size_t>(box.cls)].push_back(
                {static_cast<int>(i), box});
        }
    }

    MapReport report;
    report.per_class.reserve(
        static_cast<std::size_t>(scene::kNumObjectClasses));
    float ap_sum = 0.0f;
    int classes_with_gt = 0;
    for (int c = 0; c < scene::kNumObjectClasses; ++c) {
        ClassAp ap = average_precision(
            per_class_detections[static_cast<std::size_t>(c)], gt_per_image,
            static_cast<scene::ObjectClass>(c), iou_threshold);
        if (ap.gt_count > 0) {
            ap_sum += ap.ap;
            ++classes_with_gt;
        }
        report.per_class.push_back(std::move(ap));
    }
    if (classes_with_gt > 0) {
        report.mean_ap = ap_sum / static_cast<float>(classes_with_gt);
    }
    return report;
}

}  // namespace aero::detect
