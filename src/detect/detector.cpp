#include "detect/detector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aero::detect {

namespace ag = aero::autograd;
using nn::Var;
using tensor::Tensor;

GridDetector::GridDetector(const DetectorConfig& config, util::Rng& rng)
    : config_(config),
      conv1_(3, config.base_channels, 3, 2, 1, rng),
      norm1_(config.base_channels, 4),
      conv2_(config.base_channels, config.base_channels * 2, 3, 2, 1, rng),
      norm2_(config.base_channels * 2, 4),
      conv3_(config.base_channels * 2, config.base_channels * 2, 3, 1, 1, rng),
      head_(config.base_channels * 2, config.cell_channels(), 1, 1, 0, rng) {
    // Two stride-2 stages: image_size must be 4x the grid.
    assert(config.image_size == config.grid * 4);
    register_child(conv1_);
    register_child(norm1_);
    register_child(conv2_);
    register_child(norm2_);
    register_child(conv3_);
    register_child(head_);
}

Var GridDetector::forward(const Var& images) const {
    Var h = ag::silu(norm1_.forward(conv1_.forward(images)));
    h = ag::silu(norm2_.forward(conv2_.forward(h)));
    h = ag::silu(conv3_.forward(h));
    return head_.forward(h);
}

namespace {

float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

std::vector<BoundingBox> GridDetector::detect(const image::Image& img,
                                              float objectness_threshold,
                                              float nms_iou) const {
    image::Image sized = img;
    if (img.width() != config_.image_size ||
        img.height() != config_.image_size) {
        sized = image::resize_bilinear(img, config_.image_size,
                                       config_.image_size);
    }
    Tensor chw = sized.to_tensor_chw().reshaped(
        {1, 3, config_.image_size, config_.image_size});
    const Var pred = forward(Var::constant(std::move(chw)));
    const Tensor& grid = pred.value();  // [1, CC, S, S]

    const int s = config_.grid;
    const float cell_px =
        static_cast<float>(config_.image_size) / static_cast<float>(s);
    const float scale_x =
        static_cast<float>(img.width()) / static_cast<float>(config_.image_size);
    const float scale_y = static_cast<float>(img.height()) /
                          static_cast<float>(config_.image_size);

    auto at = [&](int channel, int gy, int gx) {
        return grid[(channel * s + gy) * s + gx];
    };

    std::vector<BoundingBox> boxes;
    for (int gy = 0; gy < s; ++gy) {
        for (int gx = 0; gx < s; ++gx) {
            const float obj = sigmoidf(at(0, gy, gx));
            if (obj < objectness_threshold) continue;
            const float dx = sigmoidf(at(1, gy, gx));
            const float dy = sigmoidf(at(2, gy, gx));
            const float bw =
                sigmoidf(at(3, gy, gx)) * static_cast<float>(config_.image_size);
            const float bh =
                sigmoidf(at(4, gy, gx)) * static_cast<float>(config_.image_size);
            int best_class = 0;
            float best_logit = at(5, gy, gx);
            for (int c = 1; c < config_.num_classes; ++c) {
                const float logit = at(5 + c, gy, gx);
                if (logit > best_logit) {
                    best_logit = logit;
                    best_class = c;
                }
            }
            BoundingBox box;
            const float cx = (static_cast<float>(gx) + dx) * cell_px;
            const float cy = (static_cast<float>(gy) + dy) * cell_px;
            box.x = (cx - bw * 0.5f) * scale_x;
            box.y = (cy - bh * 0.5f) * scale_y;
            box.w = std::max(bw * scale_x, 1.0f);
            box.h = std::max(bh * scale_y, 1.0f);
            box.cls = static_cast<scene::ObjectClass>(best_class);
            box.score = obj;
            boxes.push_back(box);
        }
    }
    return nms(std::move(boxes), nms_iou);
}

CellTargets build_targets(const std::vector<BoundingBox>& boxes,
                          const DetectorConfig& config,
                          const DetectorTrainConfig& loss_weights) {
    const int s = config.grid;
    const int cc = config.cell_channels();
    const float cell_px =
        static_cast<float>(config.image_size) / static_cast<float>(s);

    CellTargets targets;
    targets.target = Tensor({cc, s, s});
    targets.weight = Tensor({cc, s, s});
    targets.class_ids.assign(static_cast<std::size_t>(s * s), -1);

    auto set = [&](Tensor& t, int channel, int gy, int gx, float v) {
        t[(channel * s + gy) * s + gx] = v;
    };

    // Objectness is supervised everywhere (mostly negatives).
    for (int gy = 0; gy < s; ++gy) {
        for (int gx = 0; gx < s; ++gx) {
            set(targets.weight, 0, gy, gx, loss_weights.objectness_weight);
        }
    }

    std::vector<float> claimed(static_cast<std::size_t>(s * s), 0.0f);
    for (const BoundingBox& box : boxes) {
        const int gx = std::clamp(static_cast<int>(box.cx() / cell_px), 0, s - 1);
        const int gy = std::clamp(static_cast<int>(box.cy() / cell_px), 0, s - 1);
        const std::size_t cell = static_cast<std::size_t>(gy * s + gx);
        if (box.area() <= claimed[cell]) continue;  // largest box wins
        claimed[cell] = box.area();
        targets.class_ids[cell] = static_cast<int>(box.cls);

        set(targets.target, 0, gy, gx, 1.0f);
        const float dx = box.cx() / cell_px - static_cast<float>(gx);
        const float dy = box.cy() / cell_px - static_cast<float>(gy);
        set(targets.target, 1, gy, gx, std::clamp(dx, 0.01f, 0.99f));
        set(targets.target, 2, gy, gx, std::clamp(dy, 0.01f, 0.99f));
        set(targets.target, 3, gy, gx,
            std::clamp(box.w / static_cast<float>(config.image_size), 0.01f,
                       0.99f));
        set(targets.target, 4, gy, gx,
            std::clamp(box.h / static_cast<float>(config.image_size), 0.01f,
                       0.99f));
        for (int k = 1; k <= 4; ++k) {
            set(targets.weight, k, gy, gx, loss_weights.box_weight);
        }
        for (int c = 0; c < config.num_classes; ++c) {
            set(targets.target, 5 + c, gy, gx,
                c == static_cast<int>(box.cls) ? 1.0f : 0.0f);
            set(targets.weight, 5 + c, gy, gx, loss_weights.class_weight);
        }
    }
    return targets;
}

TrainStats train_detector(GridDetector& detector,
                          const std::vector<scene::AerialSample>& samples,
                          const DetectorTrainConfig& config, util::Rng& rng) {
    assert(!samples.empty());
    const DetectorConfig& dc = detector.config();

    // Pre-build input tensors and targets once.
    std::vector<Tensor> inputs;
    std::vector<CellTargets> targets;
    inputs.reserve(samples.size());
    targets.reserve(samples.size());
    for (const scene::AerialSample& sample : samples) {
        image::Image sized = sample.image;
        std::vector<BoundingBox> boxes = sample.gt_boxes;
        if (sized.width() != dc.image_size) {
            const float sc = static_cast<float>(dc.image_size) /
                             static_cast<float>(sized.width());
            sized = image::resize_bilinear(sized, dc.image_size, dc.image_size);
            for (BoundingBox& b : boxes) {
                b.x *= sc;
                b.y *= sc;
                b.w *= sc;
                b.h *= sc;
            }
        }
        inputs.push_back(sized.to_tensor_chw().reshaped(
            {1, 3, dc.image_size, dc.image_size}));
        targets.push_back(build_targets(boxes, dc, config));
    }

    nn::Adam opt(detector.parameters(),
                 {.lr = config.lr, .weight_decay = 1e-5f});
    TrainStats stats;
    const int cc = dc.cell_channels();
    const int s = dc.grid;

    for (int step = 0; step < config.steps; ++step) {
        // Assemble a batch.
        std::vector<Var> batch_inputs;
        std::vector<Tensor> batch_targets;
        std::vector<Tensor> batch_weights;
        for (int b = 0; b < config.batch_size; ++b) {
            const int i = rng.uniform_int(0, static_cast<int>(samples.size()) - 1);
            batch_inputs.push_back(Var::constant(inputs[static_cast<std::size_t>(i)]));
            batch_targets.push_back(targets[static_cast<std::size_t>(i)].target);
            batch_weights.push_back(targets[static_cast<std::size_t>(i)].weight);
        }
        const Var images = ag::concat(batch_inputs, 0);
        Tensor target_batch = tensor::concat(batch_targets, 0)
                                  .reshaped({config.batch_size, cc, s, s});
        Tensor weight_batch = tensor::concat(batch_weights, 0)
                                  .reshaped({config.batch_size, cc, s, s});

        opt.zero_grad();
        const Var pred = ag::sigmoid(detector.forward(images));
        const Var weights = Var::constant(std::move(weight_batch));
        const Var loss =
            ag::mse_loss(ag::mul(pred, weights),
                         ag::mul(Var::constant(std::move(target_batch)),
                                 weights));
        loss.backward();
        opt.clip_grad_norm(5.0f);
        opt.step();
        if (step == 0) stats.first_loss = loss.value()[0];
        stats.final_loss = loss.value()[0];
    }
    return stats;
}

std::vector<BoundingBox> nms(std::vector<BoundingBox> boxes,
                             float iou_threshold) {
    std::sort(boxes.begin(), boxes.end(),
              [](const BoundingBox& a, const BoundingBox& b) {
                  return a.score > b.score;
              });
    std::vector<BoundingBox> kept;
    for (const BoundingBox& candidate : boxes) {
        bool suppressed = false;
        for (const BoundingBox& keeper : kept) {
            if (iou(candidate, keeper) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(candidate);
    }
    return kept;
}

DetectionQuality evaluate_detector(
    const GridDetector& detector,
    const std::vector<scene::AerialSample>& samples,
    float objectness_threshold) {
    int true_positives = 0;
    int total_gt = 0;
    int total_pred = 0;
    for (const scene::AerialSample& sample : samples) {
        const auto detections =
            detector.detect(sample.image, objectness_threshold);
        total_pred += static_cast<int>(detections.size());
        total_gt += static_cast<int>(sample.gt_boxes.size());
        std::vector<bool> used(detections.size(), false);
        for (const BoundingBox& gt : sample.gt_boxes) {
            for (std::size_t i = 0; i < detections.size(); ++i) {
                if (used[i]) continue;
                if (iou(gt, detections[i]) >= 0.3f) {
                    used[i] = true;
                    ++true_positives;
                    break;
                }
            }
        }
    }
    DetectionQuality quality;
    if (total_gt > 0) {
        quality.recall =
            static_cast<float>(true_positives) / static_cast<float>(total_gt);
    }
    if (total_pred > 0) {
        quality.precision = static_cast<float>(true_positives) /
                            static_cast<float>(total_pred);
    }
    return quality;
}

std::vector<image::Image> extract_rois(const image::Image& img,
                                       const std::vector<BoundingBox>& boxes,
                                       int roi_size) {
    std::vector<image::Image> rois;
    rois.reserve(boxes.size());
    for (const BoundingBox& box : boxes) {
        // Pad the crop by 25% so context survives the resize.
        const int pad_x = std::max(1, static_cast<int>(box.w * 0.25f));
        const int pad_y = std::max(1, static_cast<int>(box.h * 0.25f));
        const image::Image patch = image::crop(
            img, static_cast<int>(box.x) - pad_x,
            static_cast<int>(box.y) - pad_y,
            std::max(2, static_cast<int>(box.w) + 2 * pad_x),
            std::max(2, static_cast<int>(box.h) + 2 * pad_y));
        rois.push_back(image::resize_bilinear(patch, roi_size, roi_size));
    }
    return rois;
}

}  // namespace aero::detect
