#pragma once
// Single-shot grid object detector: the library's stand-in for the YOLO
// model the paper trains on VisDrone (Sec. IV-B). A small conv backbone
// predicts, for every cell of an SxS grid, an objectness logit, a box
// (cell-relative centre offset + image-relative size) and class logits.
// Detections feed the region-level feature augmentation.

#include "image/image.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "scene/dataset.hpp"

namespace aero::detect {

using scene::BoundingBox;

struct DetectorConfig {
    int image_size = 32;
    int grid = 8;            ///< SxS prediction grid
    int base_channels = 16;
    int num_classes = scene::kNumObjectClasses;

    /// Channels per cell: [objectness, dx, dy, w, h, class logits...].
    int cell_channels() const { return 5 + num_classes; }
};

class GridDetector : public nn::Module {
public:
    GridDetector(const DetectorConfig& config, util::Rng& rng);

    /// Raw prediction grid for a batch: [N, 5+C, S, S]. Channel 0 is the
    /// objectness logit, 1-4 the box logits (sigmoid-bounded at decode),
    /// the rest per-class logits.
    nn::Var forward(const nn::Var& images) const;

    /// Decoded, NMS-filtered detections for one image.
    std::vector<BoundingBox> detect(const image::Image& img,
                                    float objectness_threshold = 0.45f,
                                    float nms_iou = 0.45f) const;

    const DetectorConfig& config() const { return config_; }

private:
    DetectorConfig config_;
    nn::Conv2d conv1_;
    nn::GroupNorm norm1_;
    nn::Conv2d conv2_;
    nn::GroupNorm norm2_;
    nn::Conv2d conv3_;
    nn::Conv2d head_;
};

struct DetectorTrainConfig {
    int steps = 200;
    int batch_size = 8;
    float lr = 3e-3f;
    float objectness_weight = 1.0f;
    float box_weight = 2.0f;
    float class_weight = 0.5f;
};

/// Per-cell training target built from ground-truth boxes (largest box
/// wins a contested cell). Targets/weights share the prediction layout
/// [5+C, S, S] so the loss is a single weighted MSE after sigmoid.
struct CellTargets {
    tensor::Tensor target;        ///< [5+C, S, S] desired post-sigmoid values
    tensor::Tensor weight;        ///< [5+C, S, S] per-entry loss weight
    std::vector<int> class_ids;   ///< per-cell class (-1 where empty), row-major
};

CellTargets build_targets(const std::vector<BoundingBox>& boxes,
                          const DetectorConfig& config,
                          const DetectorTrainConfig& loss_weights);

struct TrainStats {
    float first_loss = 0.0f;
    float final_loss = 0.0f;
};

/// Trains the detector on rendered samples with their GT boxes.
TrainStats train_detector(GridDetector& detector,
                          const std::vector<scene::AerialSample>& samples,
                          const DetectorTrainConfig& config, util::Rng& rng);

/// Class-agnostic greedy NMS, highest score first.
std::vector<BoundingBox> nms(std::vector<BoundingBox> boxes, float iou_threshold);

/// Detection quality on a sample set: recall and precision at IoU 0.3.
struct DetectionQuality {
    float recall = 0.0f;
    float precision = 0.0f;
};
DetectionQuality evaluate_detector(
    const GridDetector& detector,
    const std::vector<scene::AerialSample>& samples,
    float objectness_threshold = 0.45f);

/// Crops each detection region (slightly padded) and resizes it to
/// `roi_size` -- the ROI inputs of the feature augmenter.
std::vector<image::Image> extract_rois(const image::Image& img,
                                       const std::vector<BoundingBox>& boxes,
                                       int roi_size);

}  // namespace aero::detect
