#pragma once
// Standard object-detection evaluation: per-class average precision
// (11-point interpolated, VOC-style) and mAP over the VisDrone classes.
// Complements the quick recall/precision numbers in detector.hpp with
// the metric the detection literature (and the VisDrone challenge)
// reports.

#include "detect/detector.hpp"

namespace aero::detect {

/// One scored detection attributed to an image.
struct ScoredDetection {
    int image_id = 0;
    BoundingBox box;
};

/// Precision/recall curve point.
struct PrPoint {
    float recall = 0.0f;
    float precision = 0.0f;
};

/// Average precision for one class from matched detections.
/// `detections` must all carry the class; `gt_per_image[i]` is the
/// number of ground-truth boxes of that class in image i.
struct ClassAp {
    float ap = 0.0f;
    int gt_count = 0;
    int detection_count = 0;
    std::vector<PrPoint> curve;
};

/// Computes AP for one class given all detections and ground truths.
ClassAp average_precision(
    std::vector<ScoredDetection> detections,
    const std::vector<std::vector<BoundingBox>>& gt_boxes_per_image,
    scene::ObjectClass cls, float iou_threshold = 0.3f);

/// Full evaluation: runs the detector over `samples` and reports AP per
/// class plus mAP over classes that have ground truth.
struct MapReport {
    std::vector<ClassAp> per_class;  ///< indexed by ObjectClass
    float mean_ap = 0.0f;
};

MapReport evaluate_map(const GridDetector& detector,
                       const std::vector<scene::AerialSample>& samples,
                       float objectness_threshold = 0.25f,
                       float iou_threshold = 0.3f);

}  // namespace aero::detect
