#pragma once
// Raw numeric kernels over `Tensor`. These are the forward/backward
// building blocks wrapped by the autograd layer; they carry no graph
// state themselves. All functions validate shapes with asserts (logic
// errors) and keep allocation patterns simple: each op returns a fresh
// tensor.
//
// Parallelism: the hot kernels dispatch onto util::ThreadPool
// (AERO_THREADS) with chunk boundaries derived only from tensor shapes,
// and per-element floating-point accumulation order identical to the
// serial kernel — so every op here is bitwise identical for any thread
// count (determinism contract: util/thread_pool.hpp, DESIGN.md §11).

#include <vector>

#include "tensor/tensor.hpp"

namespace aero::tensor {

// ---- elementwise -----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
/// Elementwise e^x with plain IEEE semantics: inputs above ~88.73
/// overflow to +inf (and below ~-87.3 underflow to 0). Deliberately NOT
/// clamped — callers that need bounded exponentials go through
/// softmax_rows (max-subtracted) or sigmoid/silu (stable forms below);
/// the serving layer's finite-checks reject any inf that escapes.
Tensor exp(const Tensor& a);
Tensor relu(const Tensor& a);
/// dL/dx for relu given upstream grad and the forward input.
Tensor relu_backward(const Tensor& grad, const Tensor& input);
/// x * sigmoid(x), computed with the overflow-proof sigmoid form:
/// finite output for every finite input (extreme logits saturate to
/// 0 / x without inf intermediates).
Tensor silu(const Tensor& a);
Tensor silu_backward(const Tensor& grad, const Tensor& input);
Tensor tanh(const Tensor& a);
/// Backward from the forward *output* (y = tanh x): g * (1 - y^2).
Tensor tanh_backward(const Tensor& grad, const Tensor& output);
/// Logistic 1/(1+e^-x) via the sign-split stable form: the exp argument
/// is always <= 0, so extreme inputs saturate to exactly 0/1 and the
/// output is finite (in [0,1]) for every finite input.
Tensor sigmoid(const Tensor& a);
Tensor sigmoid_backward(const Tensor& grad, const Tensor& output);

// ---- linear algebra --------------------------------------------------------

/// 2-D matrix product: [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// a @ b^T: [m,k] x [n,k] -> [m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// a^T @ b: [k,m] x [k,n] -> [m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose2d(const Tensor& a);
/// Adds a length-n bias row to every row of a [m,n] matrix.
Tensor add_row_bias(const Tensor& a, const Tensor& bias);
/// Column sums of a [m,n] matrix -> [n] (bias gradient).
Tensor sum_rows(const Tensor& a);

// ---- reductions ------------------------------------------------------------

float sum_all(const Tensor& a);
float mean_all(const Tensor& a);

// ---- softmax ---------------------------------------------------------------

/// Row-wise softmax of a [m,n] matrix.
Tensor softmax_rows(const Tensor& a);
/// Backward from the forward output: g_i = y_i * (g_i - sum_j g_j y_j).
Tensor softmax_rows_backward(const Tensor& grad, const Tensor& output);

// ---- convolution (NCHW) ----------------------------------------------------

struct Conv2dSpec {
    int stride = 1;
    int pad = 0;
};

/// input [N,C,H,W], weight [OC,C,KH,KW], bias [OC] (may be empty).
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);
/// Gradient of conv2d wrt its input.
Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             const std::vector<int>& input_shape,
                             const Conv2dSpec& spec);
/// Gradient of conv2d wrt its weight.
Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              const std::vector<int>& weight_shape,
                              const Conv2dSpec& spec);
/// Gradient of conv2d wrt its bias: sums grad_out over N,H,W.
Tensor conv2d_backward_bias(const Tensor& grad_out);

// ---- spatial resampling ----------------------------------------------------

/// 2x nearest-neighbour upsample of [N,C,H,W].
Tensor upsample_nearest2x(const Tensor& input);
Tensor upsample_nearest2x_backward(const Tensor& grad_out);
/// 2x average pool of [N,C,H,W] (H and W must be even).
Tensor avg_pool2x(const Tensor& input);
Tensor avg_pool2x_backward(const Tensor& grad_out);
/// Global average pool: [N,C,H,W] -> [N,C].
Tensor global_avg_pool(const Tensor& input);
Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const std::vector<int>& input_shape);

// ---- broadcast bias over feature maps ---------------------------------------

/// Adds a per-sample per-channel bias [N,C] to a feature map [N,C,H,W]
/// (used to inject time/condition embeddings into conv blocks).
Tensor add_spatial_bias(const Tensor& x, const Tensor& bias);
/// Gradient of add_spatial_bias wrt the bias: sums grad over H,W.
Tensor add_spatial_bias_backward_bias(const Tensor& grad_out);

// ---- shape surgery ---------------------------------------------------------

/// Concatenates tensors along `axis`; all other extents must match.
Tensor concat(const std::vector<Tensor>& parts, int axis);
/// Splits the concat gradient back into per-part gradients.
std::vector<Tensor> concat_backward(const Tensor& grad,
                                    const std::vector<std::vector<int>>& shapes,
                                    int axis);
/// Copies the half-open range [start, stop) along `axis`.
Tensor slice(const Tensor& a, int axis, int start, int stop);
/// Scatters a slice gradient back into a zero tensor of `input_shape`.
Tensor slice_backward(const Tensor& grad, const std::vector<int>& input_shape,
                      int axis, int start);

}  // namespace aero::tensor
