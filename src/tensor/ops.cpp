#include "tensor/ops.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "util/thread_pool.hpp"

namespace aero::tensor {

namespace {

// Chunking floors for the pool dispatches below. Grains derive only
// from these constants and tensor shapes — never from the thread count
// — which is what keeps results bitwise identical for any AERO_THREADS
// (see util/thread_pool.hpp and DESIGN.md §11). Values are work-per-
// chunk floors so tiny tensors take the serial single-chunk fast path.
constexpr std::int64_t kElemGrain = 16384;        ///< cheap elementwise ops
constexpr std::int64_t kMinChunkFlops = 1 << 16;  ///< mul-adds per chunk
constexpr std::int64_t kMinChunkExp = 1 << 11;    ///< transcendentals/chunk

/// Applies `fn` elementwise producing a fresh tensor.
template <typename Fn>
Tensor map(const Tensor& a, Fn fn) {
    Tensor out = a;
    float* po = out.data();
    util::parallel_for(0, out.size(), kElemGrain,
                       [&](std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                               po[i] = fn(po[i]);
                           }
                       });
    return out;
}

/// Combines two same-shaped tensors elementwise.
template <typename Fn>
Tensor zip(const Tensor& a, const Tensor& b, Fn fn) {
    assert(a.same_shape(b));
    Tensor out = a;
    const float* pb = b.data();
    float* po = out.data();
    util::parallel_for(0, out.size(), kElemGrain,
                       [&](std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                               po[i] = fn(po[i], pb[i]);
                           }
                       });
    return out;
}

/// Overflow-proof logistic: the exp argument is always <= 0, so extreme
/// logits saturate to exactly 0/1 without an inf intermediate (the
/// naive 1/(1+exp(-x)) form computes exp(+big) = inf for very negative
/// x before the division collapses it).
float stable_sigmoid(float x) {
    if (x >= 0.0f) return 1.0f / (1.0f + std::exp(-x));
    const float e = std::exp(x);
    return e / (1.0f + e);
}

/// Product of extents before `axis` (outer) and after `axis` (inner).
void outer_inner(const std::vector<int>& shape, int axis, int* outer,
                 int* inner) {
    *outer = 1;
    *inner = 1;
    for (int i = 0; i < axis; ++i) *outer *= shape[static_cast<std::size_t>(i)];
    for (std::size_t i = static_cast<std::size_t>(axis) + 1; i < shape.size();
         ++i) {
        *inner *= shape[i];
    }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
    return zip(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
    return zip(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
    return zip(a, b, [](float x, float y) { return x * y; });
}

Tensor scale(const Tensor& a, float s) {
    return map(a, [s](float x) { return x * s; });
}

Tensor add_scalar(const Tensor& a, float s) {
    return map(a, [s](float x) { return x + s; });
}

Tensor neg(const Tensor& a) {
    return map(a, [](float x) { return -x; });
}

Tensor exp(const Tensor& a) {
    return map(a, [](float x) { return std::exp(x); });
}

Tensor relu(const Tensor& a) {
    return map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor relu_backward(const Tensor& grad, const Tensor& input) {
    return zip(grad, input,
               [](float g, float x) { return x > 0.0f ? g : 0.0f; });
}

Tensor silu(const Tensor& a) {
    return map(a, [](float x) { return x * stable_sigmoid(x); });
}

Tensor silu_backward(const Tensor& grad, const Tensor& input) {
    return zip(grad, input, [](float g, float x) {
        const float s = stable_sigmoid(x);
        return g * (s + x * s * (1.0f - s));
    });
}

Tensor tanh(const Tensor& a) {
    return map(a, [](float x) { return std::tanh(x); });
}

Tensor tanh_backward(const Tensor& grad, const Tensor& output) {
    return zip(grad, output,
               [](float g, float y) { return g * (1.0f - y * y); });
}

Tensor sigmoid(const Tensor& a) {
    return map(a, [](float x) { return stable_sigmoid(x); });
}

Tensor sigmoid_backward(const Tensor& grad, const Tensor& output) {
    return zip(grad, output,
               [](float g, float y) { return g * y * (1.0f - y); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
    assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0));
    const int m = a.dim(0);
    const int k = a.dim(1);
    const int n = b.dim(1);
    Tensor out({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    // Row-block partitioning: each chunk owns a disjoint band of output
    // rows and runs the full k-reduction itself, so the float summation
    // order per element never depends on the thread count.
    const std::int64_t grain =
        util::grain_for(static_cast<std::int64_t>(k) * n, kMinChunkFlops);
    util::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            for (int kk = 0; kk < k; ++kk) {
                const float aik = pa[i * k + kk];
                if (aik == 0.0f) continue;
                const float* brow = pb + kk * n;
                float* orow = po + i * n;
                for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
            }
        }
    });
    return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
    assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
    const int m = a.dim(0);
    const int k = a.dim(1);
    const int n = b.dim(0);
    Tensor out({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const std::int64_t grain =
        util::grain_for(static_cast<std::int64_t>(k) * n, kMinChunkFlops);
    util::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            const float* arow = pa + i * k;
            for (int j = 0; j < n; ++j) {
                const float* brow = pb + j * k;
                float acc = 0.0f;
                for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
                po[i * n + j] = acc;
            }
        }
    });
    return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
    assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0));
    const int k = a.dim(0);
    const int m = a.dim(1);
    const int n = b.dim(1);
    Tensor out({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    // Output rows are the parallel axis (k cannot be: every kk writes
    // all of out). Per element the kk-ascending accumulation order is
    // the same as the serial kernel's, just grouped by row.
    const std::int64_t grain =
        util::grain_for(static_cast<std::int64_t>(k) * n, kMinChunkFlops);
    util::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            float* orow = po + i * n;
            for (int kk = 0; kk < k; ++kk) {
                const float aki = pa[kk * m + i];
                if (aki == 0.0f) continue;
                const float* brow = pb + kk * n;
                for (int j = 0; j < n; ++j) orow[j] += aki * brow[j];
            }
        }
    });
    return out;
}

Tensor transpose2d(const Tensor& a) {
    assert(a.rank() == 2);
    const int m = a.dim(0);
    const int n = a.dim(1);
    Tensor out({n, m});
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
    }
    return out;
}

Tensor add_row_bias(const Tensor& a, const Tensor& bias) {
    assert(a.rank() == 2 && bias.rank() == 1 && bias.dim(0) == a.dim(1));
    Tensor out = a;
    const int m = a.dim(0);
    const int n = a.dim(1);
    float* po = out.data();
    const float* pb = bias.data();
    util::parallel_for(0, m, util::grain_for(n, kElemGrain),
                       [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                               for (int j = 0; j < n; ++j) {
                                   po[i * n + j] += pb[j];
                               }
                           }
                       });
    return out;
}

Tensor sum_rows(const Tensor& a) {
    assert(a.rank() == 2);
    const int m = a.dim(0);
    const int n = a.dim(1);
    Tensor out({n});
    const float* pa = a.data();
    float* po = out.data();
    // Columns are the parallel axis; each column sums its rows in
    // ascending order, matching the serial kernel element-for-element.
    util::parallel_for(0, n, util::grain_for(m, kElemGrain),
                       [&](std::int64_t j0, std::int64_t j1) {
                           for (std::int64_t j = j0; j < j1; ++j) {
                               float acc = 0.0f;
                               for (int i = 0; i < m; ++i) {
                                   acc += pa[i * n + j];
                               }
                               po[j] = acc;
                           }
                       });
    return out;
}

float sum_all(const Tensor& a) {
    // Deterministic parallel reduction: fixed-size chunk partials (the
    // boundaries depend only on the element count) reduced in ascending
    // chunk order — never atomics, whose arrival order would make the
    // float result depend on scheduling.
    const std::int64_t size = a.size();
    if (size == 0) return 0.0f;
    const std::int64_t chunks = (size + kElemGrain - 1) / kElemGrain;
    std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
    const float* pa = a.data();
    util::parallel_for(0, size, kElemGrain,
                       [&](std::int64_t lo, std::int64_t hi) {
                           double acc = 0.0;
                           for (std::int64_t i = lo; i < hi; ++i) {
                               acc += pa[i];
                           }
                           partials[static_cast<std::size_t>(
                               lo / kElemGrain)] = acc;
                       });
    double total = 0.0;
    for (const double partial : partials) total += partial;
    return static_cast<float>(total);
}

float mean_all(const Tensor& a) {
    return a.size() == 0 ? 0.0f : sum_all(a) / static_cast<float>(a.size());
}

Tensor softmax_rows(const Tensor& a) {
    assert(a.rank() == 2);
    const int m = a.dim(0);
    const int n = a.dim(1);
    Tensor out = a;
    float* po = out.data();
    // Rows are independent; exp dominates, so the grain floor counts
    // transcendentals rather than flops.
    util::parallel_for(
        0, m, util::grain_for(n, kMinChunkExp),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                float* row = po + i * n;
                float max_v = row[0];
                for (int j = 1; j < n; ++j) max_v = std::max(max_v, row[j]);
                float sum = 0.0f;
                for (int j = 0; j < n; ++j) {
                    row[j] = std::exp(row[j] - max_v);
                    sum += row[j];
                }
                const float inv = 1.0f / sum;
                for (int j = 0; j < n; ++j) row[j] *= inv;
            }
        });
    return out;
}

Tensor softmax_rows_backward(const Tensor& grad, const Tensor& output) {
    assert(grad.same_shape(output) && grad.rank() == 2);
    const int m = grad.dim(0);
    const int n = grad.dim(1);
    Tensor out({m, n});
    const float* pg = grad.data();
    const float* py = output.data();
    float* po = out.data();
    util::parallel_for(0, m, util::grain_for(n, kElemGrain),
                       [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                               const float* g = pg + i * n;
                               const float* y = py + i * n;
                               float dot = 0.0f;
                               for (int j = 0; j < n; ++j) dot += g[j] * y[j];
                               float* o = po + i * n;
                               for (int j = 0; j < n; ++j) {
                                   o[j] = y[j] * (g[j] - dot);
                               }
                           }
                       });
    return out;
}

namespace {

int conv_out_extent(int in, int kernel, const Conv2dSpec& spec) {
    return (in + 2 * spec.pad - kernel) / spec.stride + 1;
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
    assert(input.rank() == 4 && weight.rank() == 4);
    const int n = input.dim(0);
    const int c = input.dim(1);
    const int h = input.dim(2);
    const int w = input.dim(3);
    const int oc = weight.dim(0);
    assert(weight.dim(1) == c);
    const int kh = weight.dim(2);
    const int kw = weight.dim(3);
    const int oh = conv_out_extent(h, kh, spec);
    const int ow = conv_out_extent(w, kw, spec);
    assert(oh >= 1 && ow >= 1);
    assert(bias.empty() || (bias.rank() == 1 && bias.dim(0) == oc));

    Tensor out({n, oc, oh, ow});
    const float* pi = input.data();
    const float* pw = weight.data();
    float* po = out.data();

    // Each (batch, out-channel) plane is a disjoint output slab with its
    // own accumulators, so the n*oc planes are the parallel axis.
    const std::int64_t plane_flops =
        static_cast<std::int64_t>(oh) * ow * c * kh * kw;
    util::parallel_for(
        0, static_cast<std::int64_t>(n) * oc,
        util::grain_for(plane_flops, kMinChunkFlops),
        [&](std::int64_t bo0, std::int64_t bo1) {
            for (std::int64_t bo = bo0; bo < bo1; ++bo) {
                const int b = static_cast<int>(bo / oc);
                const int o = static_cast<int>(bo % oc);
                const float bias_v = bias.empty() ? 0.0f : bias[o];
                for (int y = 0; y < oh; ++y) {
                    for (int x = 0; x < ow; ++x) {
                        float acc = bias_v;
                        const int iy0 = y * spec.stride - spec.pad;
                        const int ix0 = x * spec.stride - spec.pad;
                        for (int ch = 0; ch < c; ++ch) {
                            const float* in_ch = pi + ((b * c + ch) * h) * w;
                            const float* w_ch = pw + ((o * c + ch) * kh) * kw;
                            for (int ky = 0; ky < kh; ++ky) {
                                const int iy = iy0 + ky;
                                if (iy < 0 || iy >= h) continue;
                                for (int kx = 0; kx < kw; ++kx) {
                                    const int ix = ix0 + kx;
                                    if (ix < 0 || ix >= w) continue;
                                    acc += in_ch[iy * w + ix] *
                                           w_ch[ky * kw + kx];
                                }
                            }
                        }
                        po[(bo * oh + y) * ow + x] = acc;
                    }
                }
            }
        });
    return out;
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             const std::vector<int>& input_shape,
                             const Conv2dSpec& spec) {
    assert(grad_out.rank() == 4 && weight.rank() == 4 &&
           input_shape.size() == 4);
    const int n = input_shape[0];
    const int c = input_shape[1];
    const int h = input_shape[2];
    const int w = input_shape[3];
    const int oc = weight.dim(0);
    const int kh = weight.dim(2);
    const int kw = weight.dim(3);
    const int oh = grad_out.dim(2);
    const int ow = grad_out.dim(3);

    Tensor grad_in(input_shape);
    const float* pg = grad_out.data();
    const float* pw = weight.data();
    float* po = grad_in.data();

    // Every output channel scatters into the same per-batch grad slab,
    // so the batch is the only safe parallel axis; the inner o/y/x
    // accumulation order per batch matches the serial kernel exactly.
    const std::int64_t batch_flops =
        static_cast<std::int64_t>(oc) * oh * ow * c * kh * kw;
    util::parallel_for(
        0, n, util::grain_for(batch_flops, kMinChunkFlops),
        [&](std::int64_t b0, std::int64_t b1) {
            for (std::int64_t b = b0; b < b1; ++b) {
                for (int o = 0; o < oc; ++o) {
                    const float* g_ch = pg + ((b * oc + o) * oh) * ow;
                    for (int y = 0; y < oh; ++y) {
                        for (int x = 0; x < ow; ++x) {
                            const float g = g_ch[y * ow + x];
                            if (g == 0.0f) continue;
                            const int iy0 = y * spec.stride - spec.pad;
                            const int ix0 = x * spec.stride - spec.pad;
                            for (int ch = 0; ch < c; ++ch) {
                                float* in_ch = po + ((b * c + ch) * h) * w;
                                const float* w_ch =
                                    pw + ((o * c + ch) * kh) * kw;
                                for (int ky = 0; ky < kh; ++ky) {
                                    const int iy = iy0 + ky;
                                    if (iy < 0 || iy >= h) continue;
                                    for (int kx = 0; kx < kw; ++kx) {
                                        const int ix = ix0 + kx;
                                        if (ix < 0 || ix >= w) continue;
                                        in_ch[iy * w + ix] +=
                                            g * w_ch[ky * kw + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
    return grad_in;
}

Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              const std::vector<int>& weight_shape,
                              const Conv2dSpec& spec) {
    assert(grad_out.rank() == 4 && input.rank() == 4 &&
           weight_shape.size() == 4);
    const int n = input.dim(0);
    const int c = input.dim(1);
    const int h = input.dim(2);
    const int w = input.dim(3);
    const int oc = weight_shape[0];
    const int kh = weight_shape[2];
    const int kw = weight_shape[3];
    const int oh = grad_out.dim(2);
    const int ow = grad_out.dim(3);

    Tensor grad_w(weight_shape);
    const float* pg = grad_out.data();
    const float* pi = input.data();
    float* po = grad_w.data();

    // Out-channel is the parallel axis: each o owns a disjoint weight
    // slab. Relative to the old b-outer loop the o/b loops are swapped,
    // but every weight element still accumulates its (b, y, x)
    // contributions in the same ascending order, so the restructure is
    // bitwise neutral.
    const std::int64_t per_oc_flops =
        static_cast<std::int64_t>(n) * oh * ow * c * kh * kw;
    util::parallel_for(
        0, oc, util::grain_for(per_oc_flops, kMinChunkFlops),
        [&](std::int64_t o0, std::int64_t o1) {
            for (std::int64_t o = o0; o < o1; ++o) {
                for (int b = 0; b < n; ++b) {
                    const float* g_ch = pg + ((b * oc + o) * oh) * ow;
                    for (int y = 0; y < oh; ++y) {
                        for (int x = 0; x < ow; ++x) {
                            const float g = g_ch[y * ow + x];
                            if (g == 0.0f) continue;
                            const int iy0 = y * spec.stride - spec.pad;
                            const int ix0 = x * spec.stride - spec.pad;
                            for (int ch = 0; ch < c; ++ch) {
                                const float* in_ch =
                                    pi + ((b * c + ch) * h) * w;
                                float* w_ch = po + ((o * c + ch) * kh) * kw;
                                for (int ky = 0; ky < kh; ++ky) {
                                    const int iy = iy0 + ky;
                                    if (iy < 0 || iy >= h) continue;
                                    for (int kx = 0; kx < kw; ++kx) {
                                        const int ix = ix0 + kx;
                                        if (ix < 0 || ix >= w) continue;
                                        w_ch[ky * kw + kx] +=
                                            g * in_ch[iy * w + ix];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
    return grad_w;
}

Tensor conv2d_backward_bias(const Tensor& grad_out) {
    assert(grad_out.rank() == 4);
    const int n = grad_out.dim(0);
    const int oc = grad_out.dim(1);
    const int spatial = grad_out.dim(2) * grad_out.dim(3);
    Tensor grad_b({oc});
    const float* pg = grad_out.data();
    float* pb = grad_b.data();
    // o-outer (parallel), b-inner: each bias element still sums its
    // per-batch partials in ascending b order, as the serial loop did.
    util::parallel_for(
        0, oc, util::grain_for(static_cast<std::int64_t>(n) * spatial,
                               kElemGrain),
        [&](std::int64_t o0, std::int64_t o1) {
            for (std::int64_t o = o0; o < o1; ++o) {
                for (int b = 0; b < n; ++b) {
                    const float* base = pg + (b * oc + o) * spatial;
                    float acc = 0.0f;
                    for (int s = 0; s < spatial; ++s) acc += base[s];
                    pb[o] += acc;
                }
            }
        });
    return grad_b;
}

Tensor upsample_nearest2x(const Tensor& input) {
    assert(input.rank() == 4);
    const int n = input.dim(0);
    const int c = input.dim(1);
    const int h = input.dim(2);
    const int w = input.dim(3);
    Tensor out({n, c, h * 2, w * 2});
    const float* pi = input.data();
    float* po = out.data();
    util::parallel_for(
        0, static_cast<std::int64_t>(n) * c,
        util::grain_for(static_cast<std::int64_t>(h) * w * 4, kElemGrain),
        [&](std::int64_t bc0, std::int64_t bc1) {
            for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                const float* src = pi + bc * h * w;
                float* dst = po + bc * h * w * 4;
                for (int y = 0; y < h * 2; ++y) {
                    for (int x = 0; x < w * 2; ++x) {
                        dst[y * w * 2 + x] = src[(y / 2) * w + (x / 2)];
                    }
                }
            }
        });
    return out;
}

Tensor upsample_nearest2x_backward(const Tensor& grad_out) {
    assert(grad_out.rank() == 4);
    const int n = grad_out.dim(0);
    const int c = grad_out.dim(1);
    const int oh = grad_out.dim(2);
    const int ow = grad_out.dim(3);
    assert(oh % 2 == 0 && ow % 2 == 0);
    const int h = oh / 2;
    const int w = ow / 2;
    Tensor grad_in({n, c, h, w});
    const float* pg = grad_out.data();
    float* po = grad_in.data();
    util::parallel_for(
        0, static_cast<std::int64_t>(n) * c,
        util::grain_for(static_cast<std::int64_t>(oh) * ow, kElemGrain),
        [&](std::int64_t bc0, std::int64_t bc1) {
            for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                const float* src = pg + bc * oh * ow;
                float* dst = po + bc * h * w;
                for (int y = 0; y < oh; ++y) {
                    for (int x = 0; x < ow; ++x) {
                        dst[(y / 2) * w + (x / 2)] += src[y * ow + x];
                    }
                }
            }
        });
    return grad_in;
}

Tensor avg_pool2x(const Tensor& input) {
    assert(input.rank() == 4);
    const int n = input.dim(0);
    const int c = input.dim(1);
    const int h = input.dim(2);
    const int w = input.dim(3);
    assert(h % 2 == 0 && w % 2 == 0);
    Tensor out({n, c, h / 2, w / 2});
    const float* pi = input.data();
    float* po = out.data();
    util::parallel_for(
        0, static_cast<std::int64_t>(n) * c,
        util::grain_for(static_cast<std::int64_t>(h) * w, kElemGrain),
        [&](std::int64_t bc0, std::int64_t bc1) {
            for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                const float* src = pi + bc * h * w;
                float* dst = po + bc * (h / 2) * (w / 2);
                for (int y = 0; y < h / 2; ++y) {
                    for (int x = 0; x < w / 2; ++x) {
                        const float sum = src[(2 * y) * w + 2 * x] +
                                          src[(2 * y) * w + 2 * x + 1] +
                                          src[(2 * y + 1) * w + 2 * x] +
                                          src[(2 * y + 1) * w + 2 * x + 1];
                        dst[y * (w / 2) + x] = 0.25f * sum;
                    }
                }
            }
        });
    return out;
}

Tensor avg_pool2x_backward(const Tensor& grad_out) {
    assert(grad_out.rank() == 4);
    const int n = grad_out.dim(0);
    const int c = grad_out.dim(1);
    const int oh = grad_out.dim(2);
    const int ow = grad_out.dim(3);
    Tensor grad_in({n, c, oh * 2, ow * 2});
    const float* pg = grad_out.data();
    float* po = grad_in.data();
    util::parallel_for(
        0, static_cast<std::int64_t>(n) * c,
        util::grain_for(static_cast<std::int64_t>(oh) * ow * 4, kElemGrain),
        [&](std::int64_t bc0, std::int64_t bc1) {
            for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                const float* src = pg + bc * oh * ow;
                float* dst = po + bc * oh * ow * 4;
                for (int y = 0; y < oh * 2; ++y) {
                    for (int x = 0; x < ow * 2; ++x) {
                        dst[y * ow * 2 + x] =
                            0.25f * src[(y / 2) * ow + (x / 2)];
                    }
                }
            }
        });
    return grad_in;
}

Tensor global_avg_pool(const Tensor& input) {
    assert(input.rank() == 4);
    const int n = input.dim(0);
    const int c = input.dim(1);
    const int spatial = input.dim(2) * input.dim(3);
    Tensor out({n, c});
    const float inv = 1.0f / static_cast<float>(spatial);
    const float* pi = input.data();
    float* po = out.data();
    util::parallel_for(0, static_cast<std::int64_t>(n) * c,
                       util::grain_for(spatial, kElemGrain),
                       [&](std::int64_t bc0, std::int64_t bc1) {
                           for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                               const float* src = pi + bc * spatial;
                               float acc = 0.0f;
                               for (int s = 0; s < spatial; ++s) acc += src[s];
                               po[bc] = acc * inv;
                           }
                       });
    return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const std::vector<int>& input_shape) {
    assert(grad_out.rank() == 2 && input_shape.size() == 4);
    const int n = input_shape[0];
    const int c = input_shape[1];
    const int spatial = input_shape[2] * input_shape[3];
    Tensor grad_in(input_shape);
    const float inv = 1.0f / static_cast<float>(spatial);
    const float* pg = grad_out.data();
    float* po = grad_in.data();
    util::parallel_for(0, static_cast<std::int64_t>(n) * c,
                       util::grain_for(spatial, kElemGrain),
                       [&](std::int64_t bc0, std::int64_t bc1) {
                           for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                               const float g = pg[bc] * inv;
                               float* dst = po + bc * spatial;
                               for (int s = 0; s < spatial; ++s) dst[s] = g;
                           }
                       });
    return grad_in;
}

Tensor add_spatial_bias(const Tensor& x, const Tensor& bias) {
    assert(x.rank() == 4 && bias.rank() == 2);
    assert(bias.dim(0) == x.dim(0) && bias.dim(1) == x.dim(1));
    const int nc = x.dim(0) * x.dim(1);
    const int spatial = x.dim(2) * x.dim(3);
    Tensor out = x;
    float* po = out.data();
    const float* pb = bias.data();
    util::parallel_for(0, nc, util::grain_for(spatial, kElemGrain),
                       [&](std::int64_t bc0, std::int64_t bc1) {
                           for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                               const float b = pb[bc];
                               float* base = po + bc * spatial;
                               for (int s = 0; s < spatial; ++s) base[s] += b;
                           }
                       });
    return out;
}

Tensor add_spatial_bias_backward_bias(const Tensor& grad_out) {
    assert(grad_out.rank() == 4);
    const int n = grad_out.dim(0);
    const int c = grad_out.dim(1);
    const int spatial = grad_out.dim(2) * grad_out.dim(3);
    Tensor grad_bias({n, c});
    const float* pg = grad_out.data();
    float* po = grad_bias.data();
    util::parallel_for(0, static_cast<std::int64_t>(n) * c,
                       util::grain_for(spatial, kElemGrain),
                       [&](std::int64_t bc0, std::int64_t bc1) {
                           for (std::int64_t bc = bc0; bc < bc1; ++bc) {
                               const float* base = pg + bc * spatial;
                               float acc = 0.0f;
                               for (int s = 0; s < spatial; ++s) {
                                   acc += base[s];
                               }
                               po[bc] = acc;
                           }
                       });
    return grad_bias;
}

Tensor concat(const std::vector<Tensor>& parts, int axis) {
    assert(!parts.empty());
    std::vector<int> out_shape = parts.front().shape();
    assert(axis >= 0 && axis < static_cast<int>(out_shape.size()));
    int axis_total = 0;
    for (const Tensor& p : parts) {
        assert(p.rank() == static_cast<int>(out_shape.size()));
        for (int d = 0; d < p.rank(); ++d) {
            assert(d == axis || p.dim(d) == out_shape[static_cast<std::size_t>(d)]);
        }
        axis_total += p.dim(axis);
    }
    out_shape[static_cast<std::size_t>(axis)] = axis_total;
    Tensor out(out_shape);

    int outer = 0;
    int inner = 0;
    outer_inner(out_shape, axis, &outer, &inner);

    int axis_offset = 0;
    for (const Tensor& p : parts) {
        const int p_axis = p.dim(axis);
        for (int o = 0; o < outer; ++o) {
            const float* src = p.data() + o * p_axis * inner;
            float* dst =
                out.data() + (o * axis_total + axis_offset) * inner;
            for (int i = 0; i < p_axis * inner; ++i) dst[i] = src[i];
        }
        axis_offset += p_axis;
    }
    return out;
}

std::vector<Tensor> concat_backward(
    const Tensor& grad, const std::vector<std::vector<int>>& shapes,
    int axis) {
    std::vector<Tensor> grads;
    grads.reserve(shapes.size());
    int outer = 0;
    int inner = 0;
    outer_inner(grad.shape(), axis, &outer, &inner);
    const int axis_total = grad.dim(axis);

    int axis_offset = 0;
    for (const std::vector<int>& shape : shapes) {
        Tensor g(shape);
        const int p_axis = shape[static_cast<std::size_t>(axis)];
        for (int o = 0; o < outer; ++o) {
            const float* src =
                grad.data() + (o * axis_total + axis_offset) * inner;
            float* dst = g.data() + o * p_axis * inner;
            for (int i = 0; i < p_axis * inner; ++i) dst[i] = src[i];
        }
        axis_offset += p_axis;
        grads.push_back(std::move(g));
    }
    return grads;
}

Tensor slice(const Tensor& a, int axis, int start, int stop) {
    assert(axis >= 0 && axis < a.rank());
    assert(0 <= start && start < stop && stop <= a.dim(axis));
    std::vector<int> out_shape = a.shape();
    out_shape[static_cast<std::size_t>(axis)] = stop - start;
    Tensor out(out_shape);

    int outer = 0;
    int inner = 0;
    outer_inner(a.shape(), axis, &outer, &inner);
    const int in_axis = a.dim(axis);
    const int out_axis = stop - start;
    for (int o = 0; o < outer; ++o) {
        const float* src = a.data() + (o * in_axis + start) * inner;
        float* dst = out.data() + o * out_axis * inner;
        for (int i = 0; i < out_axis * inner; ++i) dst[i] = src[i];
    }
    return out;
}

Tensor slice_backward(const Tensor& grad, const std::vector<int>& input_shape,
                      int axis, int start) {
    Tensor out(input_shape);
    int outer = 0;
    int inner = 0;
    outer_inner(input_shape, axis, &outer, &inner);
    const int in_axis = input_shape[static_cast<std::size_t>(axis)];
    const int out_axis = grad.dim(axis);
    for (int o = 0; o < outer; ++o) {
        const float* src = grad.data() + o * out_axis * inner;
        float* dst = out.data() + (o * in_axis + start) * inner;
        for (int i = 0; i < out_axis * inner; ++i) dst[i] += src[i];
    }
    return out;
}

}  // namespace aero::tensor
