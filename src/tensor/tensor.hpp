#pragma once
// Dense row-major float32 tensor: the numeric substrate for the neural
// networks. Value semantics (copies copy the buffer); shapes are small
// int vectors. Higher layers (autograd, nn) treat this type as plain data.
//
// Storage is a mem::Buffer drawn from the size-bucketed caching arena
// (DESIGN.md §17), so steady-state sampling recycles blocks instead of
// hitting the heap every step. The buffer's size is frozen at
// construction — there is no mutable container accessor (the old
// values() foot-gun let callers resize storage out of sync with the
// shape); mutate through data()/begin()/end()/copy_from instead.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "util/rng.hpp"

namespace aero::tensor {

class Tensor {
public:
    Tensor() = default;

    /// Zero-filled tensor of the given shape. Every extent must be >= 1.
    explicit Tensor(std::vector<int> shape);

    static Tensor zeros(std::vector<int> shape);
    static Tensor ones(std::vector<int> shape);
    static Tensor full(std::vector<int> shape, float value);
    /// I.i.d. N(mean, stddev^2) entries.
    static Tensor randn(std::vector<int> shape, util::Rng& rng,
                        float mean = 0.0f, float stddev = 1.0f);
    /// I.i.d. U[lo, hi) entries.
    static Tensor uniform(std::vector<int> shape, util::Rng& rng, float lo,
                          float hi);
    /// 1-D tensor from explicit values.
    static Tensor from_values(std::vector<float> values);  // aero-lint: allow(arena-bypass)

    const std::vector<int>& shape() const { return shape_; }
    int rank() const { return static_cast<int>(shape_.size()); }
    int dim(int axis) const;
    /// Total number of elements.
    int size() const { return static_cast<int>(data_.size()); }
    bool empty() const { return data_.empty(); }

    float* data() {
        debug_check();
        return data_.data();
    }
    const float* data() const {
        debug_check();
        return data_.data();
    }

    /// Raw element iteration (range-for works: `for (float v : t)`).
    float* begin() { return data_.begin(); }
    float* end() { return data_.end(); }
    const float* begin() const { return data_.begin(); }
    const float* end() const { return data_.end(); }

    /// Copies the elements out (boundary/serialisation use only; hot
    /// paths should iterate data() in place).
    std::vector<float> to_vector() const;  // aero-lint: allow(arena-bypass)

    /// Overwrites all elements from [src, src + count). Throws when
    /// `count` disagrees with size() — the checked replacement for the
    /// removed mutable values() accessor.
    void copy_from(const float* src, int count);

    float& operator[](int flat_index) { return data_[static_cast<std::size_t>(flat_index)]; }
    float operator[](int flat_index) const { return data_[static_cast<std::size_t>(flat_index)]; }

    /// Multi-index access; the index count must equal rank().
    float& at(std::initializer_list<int> index);
    float at(std::initializer_list<int> index) const;

    /// Same data, new shape (element counts must match).
    Tensor reshaped(std::vector<int> new_shape) const;

    /// Flattened to 1-D.
    Tensor flattened() const;

    /// "[2, 3]" style shape string for diagnostics.
    std::string shape_string() const;

    /// True when shapes are element-wise equal.
    bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

private:
    int flat_index(std::initializer_list<int> index) const;

    /// Debug-build invariant: storage size always matches the shape's
    /// element count (an empty shape means an empty or scalar-free
    /// tensor). Compiled out under NDEBUG.
    void debug_check() const;

    std::vector<int> shape_;
    mem::Buffer data_;
};

/// Number of elements implied by a shape.
int shape_size(const std::vector<int>& shape);

}  // namespace aero::tensor
