#include "tensor/tensor.hpp"

#include <cassert>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace aero::tensor {

int shape_size(const std::vector<int>& shape) {
    int total = 1;
    for (int extent : shape) {
        if (extent < 1) throw std::invalid_argument("tensor extent must be >= 1");
        total *= extent;
    }
    return total;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_size(shape_))) {}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(std::vector<int> shape) {
    return full(std::move(shape), 1.0f);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = value;
    return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float mean,
                     float stddev) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) {
        v = static_cast<float>(rng.normal(mean, stddev));
    }
    return t;
}

Tensor Tensor::uniform(std::vector<int> shape, util::Rng& rng, float lo,
                       float hi) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) {
        v = static_cast<float>(rng.uniform(lo, hi));
    }
    return t;
}

// Interop boundary with vector-based callers (tests, serializers); the
// payload is copied into/out of arena-backed storage immediately.
Tensor Tensor::from_values(std::vector<float> values) {  // aero-lint: allow(arena-bypass)
    Tensor t;
    t.shape_ = {static_cast<int>(values.size())};
    t.data_ = mem::Buffer::copy_of(values.data(), values.size());
    return t;
}

std::vector<float> Tensor::to_vector() const {  // aero-lint: allow(arena-bypass)
    return std::vector<float>(data_.begin(), data_.end());
}

void Tensor::copy_from(const float* src, int count) {
    if (count != size()) {
        throw std::invalid_argument(
            "copy_from element count mismatch: got " + std::to_string(count) +
            " for tensor " + shape_string());
    }
    if (count > 0) {
        std::memcpy(data_.data(), src,
                    static_cast<std::size_t>(count) * sizeof(float));
    }
}

int Tensor::dim(int axis) const {
    if (axis < 0) axis += rank();
    assert(axis >= 0 && axis < rank());
    return shape_[static_cast<std::size_t>(axis)];
}

int Tensor::flat_index(std::initializer_list<int> index) const {
    assert(static_cast<int>(index.size()) == rank());
    int flat = 0;
    int axis = 0;
    for (int i : index) {
        assert(i >= 0 && i < shape_[static_cast<std::size_t>(axis)]);
        flat = flat * shape_[static_cast<std::size_t>(axis)] + i;
        ++axis;
    }
    return flat;
}

void Tensor::debug_check() const {
#ifndef NDEBUG
    if (shape_.empty()) {
        assert(data_.empty() && "default tensor must carry no storage");
        return;
    }
    long long expected = 1;
    for (int extent : shape_) expected *= extent;  // extents of 0 allowed here
    assert(expected == static_cast<long long>(data_.size()) &&
           "tensor storage size out of sync with shape");
#endif
}

float& Tensor::at(std::initializer_list<int> index) {
    debug_check();
    return data_[static_cast<std::size_t>(flat_index(index))];
}

float Tensor::at(std::initializer_list<int> index) const {
    debug_check();
    return data_[static_cast<std::size_t>(flat_index(index))];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
    if (shape_size(new_shape) != size()) {
        throw std::invalid_argument("reshape element count mismatch: " +
                                    shape_string());
    }
    Tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
}

Tensor Tensor::flattened() const { return reshaped({size()}); }

std::string Tensor::shape_string() const {
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0) out << ", ";
        out << shape_[i];
    }
    out << ']';
    return out.str();
}

}  // namespace aero::tensor
