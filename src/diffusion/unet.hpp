#pragma once
// Conditional UNet denoiser eps_theta(z_t, t, C) (Sec. IV-C-3).
// Two resolutions with residual blocks, sinusoidal time embeddings
// injected per block, and a bottleneck cross-attention that reads the
// condition token set C (Eq. 5). An untrained "null" token supports
// unconditional passes and classifier-free guidance.

#include "diffusion/schedule.hpp"
#include "nn/attention.hpp"
#include "nn/layers.hpp"

namespace aero::diffusion {

using autograd::Var;
using tensor::Tensor;

struct UNetConfig {
    int in_channels = 4;    ///< latent channels (3 for pixel-space DDPM)
    int base_channels = 24;
    int cond_dim = 32;      ///< width of condition tokens
    int heads = 4;
    int time_dim = 32;
    int groups = 4;         ///< group-norm groups
};

/// Sinusoidal timestep features -> MLP. Produces [N, time_dim].
class TimeEmbedding : public nn::Module {
public:
    TimeEmbedding(int time_dim, util::Rng& rng);

    /// `t` are integer steps; `total_steps` normalises the frequency base.
    Var forward(const std::vector<int>& t, int total_steps) const;

private:
    int time_dim_;
    nn::Linear fc1_;
    nn::Linear fc2_;
};

/// GroupNorm -> SiLU -> conv, with the time embedding added between the
/// two convolutions and a projected residual connection.
class ResBlock : public nn::Module {
public:
    ResBlock(int in_channels, int out_channels, int time_dim, int groups,
             util::Rng& rng);

    Var forward(const Var& x, const Var& time_embedding) const;

private:
    bool needs_projection_;
    nn::GroupNorm norm1_;
    nn::Conv2d conv1_;
    nn::Linear time_proj_;
    nn::GroupNorm norm2_;
    nn::Conv2d conv2_;
    nn::Conv2d skip_;
};

class UNet : public nn::Module {
public:
    UNet(const UNetConfig& config, util::Rng& rng);

    /// Denoises a batch. `t` holds one timestep per sample;
    /// `condition_tokens` holds one [K_i, cond_dim] token matrix per
    /// sample (an empty Tensor selects the learned null token, giving the
    /// unconditional branch for classifier-free guidance).
    Var forward(const Var& z, const std::vector<int>& t, int total_steps,
                const std::vector<Tensor>& condition_tokens) const;

    /// Graph-building variant: condition tokens arrive as live autograd
    /// nodes so upstream condition encoders (BLIP fusion, region
    /// augmenter) receive gradients and train jointly with the denoiser
    /// (the paper's joint optimisation of theta and C). An undefined Var
    /// selects the learned null token.
    Var forward(const Var& z, const std::vector<int>& t, int total_steps,
                const std::vector<Var>& condition_tokens) const;

    /// Single-sample convenience used by the samplers (no grad needed by
    /// callers; they read .value()).
    Tensor denoise(const Tensor& z, int t, int total_steps,
                   const Tensor& condition_tokens) const;

    const UNetConfig& config() const { return config_; }

private:
    /// Cross-attention of bottleneck tokens over one sample's condition
    /// (undefined Var = null token).
    Var attend(const Var& features, const Var& condition_tokens) const;

    UNetConfig config_;
    TimeEmbedding time_embedding_;
    nn::Linear cond_pool_proj_;  ///< pooled condition -> time-embedding space
    nn::Conv2d conv_in_;
    ResBlock down_block_;
    ResBlock mid_block_in_;
    nn::Linear cond_proj_;
    nn::LayerNorm attn_norm_;
    nn::MultiHeadAttention cross_attn_;
    ResBlock mid_block_out_;
    ResBlock up_block_;
    nn::GroupNorm norm_out_;
    nn::Conv2d conv_out_;
    Var null_token_;  ///< [1, cond_dim] learned unconditional token
};

}  // namespace aero::diffusion
