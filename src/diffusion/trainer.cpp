#include "diffusion/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "nn/ema.hpp"
#include "tensor/ops.hpp"

namespace aero::diffusion {

namespace ag = aero::autograd;

DiffusionTrainStats train_diffusion(
    UNet& unet, const NoiseSchedule& schedule,
    const std::vector<Tensor>& latents,
    const std::vector<Tensor>& condition_tokens,
    const DiffusionTrainConfig& config, util::Rng& rng) {
    assert(!latents.empty());
    assert(latents.size() == condition_tokens.size());
    const std::vector<int>& latent_shape = latents.front().shape();
    assert(latent_shape.size() == 3);

    std::vector<autograd::Var> params = unet.parameters();
    nn::Adam opt(params,
                 {.lr = config.lr, .weight_decay = config.weight_decay});
    std::unique_ptr<nn::Ema> ema;
    if (config.ema_decay > 0.0f) {
        ema = std::make_unique<nn::Ema>(params, config.ema_decay);
    }
    DivergenceSentinel sentinel(params, opt, config.sentinel);
    util::FaultInjector* injector = config.fault_injector;

    DiffusionTrainStats stats;
    double tail_sum = 0.0;
    int tail_count = 0;
    bool first_recorded = false;
    const int batch =
        std::min<int>(config.batch_size, static_cast<int>(latents.size()));
    const int c = latent_shape[0];
    const int h = latent_shape[1];
    const int w = latent_shape[2];

    for (int step = 0; step < config.steps; ++step) {
        inject_param_fault(injector, step, params);

        std::vector<Tensor> noisy;
        std::vector<Tensor> noise;
        std::vector<int> timesteps;
        std::vector<Tensor> batch_cond;
        noisy.reserve(static_cast<std::size_t>(batch));
        for (int b = 0; b < batch; ++b) {
            const int i =
                rng.uniform_int(0, static_cast<int>(latents.size()) - 1);
            const int t = rng.uniform_int(0, schedule.steps() - 1);
            const Tensor eps = Tensor::randn(latent_shape, rng);
            noisy.push_back(
                schedule
                    .q_sample(latents[static_cast<std::size_t>(i)], t, eps)
                    .reshaped({1, c, h, w}));
            noise.push_back(schedule.training_target(
                latents[static_cast<std::size_t>(i)], eps, t,
                config.parameterization));
            timesteps.push_back(t);
            const bool drop = rng.bernoulli(config.condition_dropout);
            batch_cond.push_back(
                drop ? Tensor()
                     : condition_tokens[static_cast<std::size_t>(i)]);
        }
        const Var z_t = Var::constant(tensor::concat(noisy, 0));
        const Var target = Var::constant(
            tensor::concat(noise, 0).reshaped({batch, c, h, w}));

        opt.zero_grad();
        const Var eps_pred =
            unet.forward(z_t, timesteps, schedule.steps(), batch_cond);
        const Var loss = ag::mse_loss(eps_pred, target);  // Eq. 6
        loss.backward();
        inject_grad_fault(injector, step, params);
        const float grad_norm = opt.clip_grad_norm(config.grad_clip);
        const float value =
            inject_loss_fault(injector, step, loss.value()[0]);

        // The sentinel rules before the update lands: a poisoned or
        // spiking step is rolled back instead of applied, so neither the
        // weights nor the EMA shadow ever absorb it.
        const auto action = sentinel.observe(step, value, grad_norm);
        if (action == DivergenceSentinel::Action::kAbort) break;
        if (action == DivergenceSentinel::Action::kRollback) continue;

        opt.step();
        if (ema) ema->update();

        if (!first_recorded) {
            stats.first_loss = value;
            first_recorded = true;
        }
        stats.final_loss = value;
        if (step >= config.steps * 3 / 4) {
            tail_sum += value;
            ++tail_count;
        }
    }
    if (tail_count > 0) {
        stats.tail_loss = static_cast<float>(tail_sum / tail_count);
    }
    stats.nan_events = sentinel.nan_events();
    stats.rollbacks = sentinel.rollbacks();
    stats.diverged = sentinel.diverged();
    if (ema && !stats.diverged) ema->apply();  // sample the averaged weights
    return stats;
}

}  // namespace aero::diffusion
