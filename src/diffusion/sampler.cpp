#include "diffusion/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"

namespace aero::diffusion {

namespace ops = aero::tensor;

namespace {

obs::Histogram& step_histogram() {
    static obs::Histogram& histogram =
        obs::MetricsRegistry::instance().histogram(
            "aero_diffusion_step_ms", "single DDIM denoising step, ms",
            obs::default_ms_buckets());
    return histogram;
}

}  // namespace

Tensor DdpmSampler::sample(const std::vector<int>& shape,
                           const Tensor& condition_tokens,
                           util::Rng& rng) const {
    const int steps = schedule_.steps();
    Tensor z = Tensor::randn(shape, rng);
    for (int t = steps - 1; t >= 0; --t) {
        const Tensor prediction =
            unet_.denoise(z, t, steps, condition_tokens);
        const Tensor eps_pred =
            schedule_.to_epsilon(prediction, z, t, parameterization_);
        const float alpha = schedule_.alpha(t);
        const float alpha_bar = schedule_.alpha_bar(t);
        const float coef =
            schedule_.beta(t) / std::sqrt(1.0f - alpha_bar);
        // mu = (z - coef * eps) / sqrt(alpha)
        Tensor mean = ops::scale(ops::sub(z, ops::scale(eps_pred, coef)),
                                 1.0f / std::sqrt(alpha));
        if (t > 0) {
            const float sigma = std::sqrt(schedule_.beta(t));
            const Tensor noise = Tensor::randn(shape, rng);
            mean = ops::add(mean, ops::scale(noise, sigma));
        }
        z = std::move(mean);
    }
    return z;
}

Tensor DdimSampler::guided_eps(const Tensor& z, int t,
                               const Tensor& condition_tokens) const {
    const int steps = schedule_.steps();
    const auto param = config_.parameterization;
    if (condition_tokens.empty() ||
        std::abs(config_.guidance_scale - 1.0f) < 1e-6f) {
        return schedule_.to_epsilon(
            unet_.denoise(z, t, steps, condition_tokens), z, t, param);
    }
    const Tensor eps_cond = schedule_.to_epsilon(
        unet_.denoise(z, t, steps, condition_tokens), z, t, param);
    const Tensor eps_uncond = schedule_.to_epsilon(
        unet_.denoise(z, t, steps, Tensor()), z, t, param);
    // eps = eps_uncond + g * (eps_cond - eps_uncond)
    return ops::add(eps_uncond, ops::scale(ops::sub(eps_cond, eps_uncond),
                                           config_.guidance_scale));
}

std::vector<int> DdimSampler::timestep_subsequence() const {
    const int steps = schedule_.steps();
    const int inference = std::clamp(config_.inference_steps, 1, steps);
    std::vector<int> timesteps;
    timesteps.reserve(static_cast<std::size_t>(inference));
    for (int i = inference - 1; i >= 0; --i) {
        timesteps.push_back((i * steps) / inference);
    }
    return timesteps;
}

Tensor DdimSampler::run(Tensor z, std::size_t first_step,
                        const std::vector<int>& timesteps,
                        const Tensor& condition_tokens,
                        const Tensor* keep_mask, const Tensor* source,
                        util::Rng& rng) const {
    const std::vector<int> shape = z.shape();
    // Per-step timing feeds the aero_diffusion_step_ms histogram; raw
    // clock reads rather than an obs::Span because one span per
    // denoising step would flood the trace ring.
    const bool timed = obs::enabled();
    for (std::size_t k = first_step; k < timesteps.size(); ++k) {
        if (config_.should_cancel && config_.should_cancel()) {
            return Tensor();
        }
        const std::int64_t step_start =
            timed ? obs::default_clock().now_ns() : 0;
        const int t = timesteps[k];
        const int t_prev =
            (k + 1 < timesteps.size()) ? timesteps[k + 1] : -1;

        Tensor eps = guided_eps(z, t, condition_tokens);

        const float alpha_bar_prev =
            t_prev >= 0 ? schedule_.alpha_bar(t_prev) : 1.0f;
        const float sigma =
            config_.eta *
            std::sqrt((1.0f - alpha_bar_prev) /
                      (1.0f - schedule_.alpha_bar(t))) *
            std::sqrt(1.0f - schedule_.alpha_bar(t) / alpha_bar_prev);
        const float dir_coef = std::sqrt(
            std::max(1.0f - alpha_bar_prev - sigma * sigma, 0.0f));

        auto ddim_update = [&](const Tensor& noise_estimate) {
            const Tensor z0 = schedule_.predict_z0(z, t, noise_estimate);
            return ops::add(ops::scale(z0, std::sqrt(alpha_bar_prev)),
                            ops::scale(noise_estimate, dir_coef));
        };

        // Gate Heun on the *config*, not the per-step sigma: with eta > 0
        // sigma can still round to exactly 0 on flat stretches of
        // alpha_bar (tiny beta), and the stochastic path must never
        // silently take the deterministic predictor-corrector branch.
        if (config_.use_heun && config_.eta == 0.0f && t_prev >= 0) {
            // Predictor-corrector: evaluate the denoiser again at the
            // Euler endpoint and average the two noise directions.
            const Tensor euler = ddim_update(eps);
            const Tensor eps2 = guided_eps(euler, t_prev, condition_tokens);
            eps = ops::scale(ops::add(eps, eps2), 0.5f);
        }

        Tensor next = ddim_update(eps);
        if (sigma > 0.0f && t_prev >= 0) {
            next = ops::add(next,
                            ops::scale(Tensor::randn(shape, rng), sigma));
        }

        if (keep_mask != nullptr && source != nullptr) {
            // Re-impose the known region at the new noise level.
            Tensor reference = *source;
            if (t_prev >= 0) {
                const Tensor noise = Tensor::randn(shape, rng);
                reference = schedule_.q_sample(*source, t_prev, noise);
            }
            // z = mask * z + (1 - mask) * reference
            Tensor kept = ops::mul(next, *keep_mask);
            Tensor imposed =
                ops::mul(reference, ops::add_scalar(ops::neg(*keep_mask),
                                                    1.0f));
            next = ops::add(kept, imposed);
        }
        z = std::move(next);
        if (timed) {
            step_histogram().observe(
                static_cast<double>(obs::default_clock().now_ns() -
                                    step_start) *
                1e-6);
        }
    }
    return z;
}

Tensor DdimSampler::sample(const std::vector<int>& shape,
                           const Tensor& condition_tokens,
                           util::Rng& rng) const {
    return run(Tensor::randn(shape, rng), 0, timestep_subsequence(),
               condition_tokens, nullptr, nullptr, rng);
}

Tensor DdimSampler::edit(const Tensor& source_latent,
                         const Tensor& condition_tokens, float strength,
                         util::Rng& rng) const {
    const std::vector<int> timesteps = timestep_subsequence();
    const float clamped = std::clamp(strength, 0.05f, 1.0f);
    // Start at the subsequence index whose timestep matches the strength.
    const auto start = static_cast<std::size_t>(
        (1.0f - clamped) * static_cast<float>(timesteps.size() - 1));
    const int t_start = timesteps[start];
    const Tensor noise = Tensor::randn(source_latent.shape(), rng);
    Tensor z = schedule_.q_sample(source_latent, t_start, noise);
    return run(std::move(z), start, timesteps, condition_tokens, nullptr,
               nullptr, rng);
}

Tensor DdimSampler::inpaint(const Tensor& source_latent, const Tensor& mask,
                            const Tensor& condition_tokens,
                            util::Rng& rng) const {
    assert(mask.same_shape(source_latent));
    return run(Tensor::randn(source_latent.shape(), rng), 0,
               timestep_subsequence(), condition_tokens, &mask,
               &source_latent, rng);
}

}  // namespace aero::diffusion
