#include "diffusion/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"

namespace aero::diffusion {

namespace ops = aero::tensor;

namespace {

obs::Histogram& step_histogram() {
    static obs::Histogram& histogram =
        obs::MetricsRegistry::instance().histogram(
            "aero_diffusion_step_ms", "single DDIM denoising step, ms",
            obs::default_ms_buckets());
    return histogram;
}

/// Continuous-batching metrics (obs/metric_names.hpp). The batch-size
/// histogram records how many requests each batched step amortised;
/// joins/retired balance once every admitted job has retired.
struct BatchMetrics {
    obs::Histogram* size = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* joins = nullptr;
    obs::Counter* retired = nullptr;
};

const BatchMetrics& batch_metrics() {
    static const BatchMetrics metrics = [] {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
        BatchMetrics m;
        m.size = &reg.histogram(
            "aero_batch_size",
            "requests amortised by one batched denoising step",
            {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
        m.steps = &reg.counter("aero_batch_steps_total",
                               "batched denoising steps executed");
        m.joins = &reg.counter("aero_batch_joins_total",
                               "sampling jobs admitted into the step batch");
        m.retired = &reg.counter(
            "aero_batch_retired_total",
            "sampling jobs retired from the step batch (finished or "
            "cancelled)");
        return m;
    }();
    return metrics;
}

/// Classifier-free guidance needs the paired unconditional evaluation
/// only when a condition is present and the scale moves the estimate.
bool cfg_active(const SamplerJob& job) {
    return !job.condition_tokens.empty() &&
           std::abs(job.config.guidance_scale - 1.0f) >= 1e-6f;
}

}  // namespace

Tensor DdpmSampler::sample(const std::vector<int>& shape,
                           const Tensor& condition_tokens,
                           util::Rng& rng) const {
    const int steps = schedule_.steps();
    Tensor z = Tensor::randn(shape, rng);
    for (int t = steps - 1; t >= 0; --t) {
        const Tensor prediction =
            unet_.denoise(z, t, steps, condition_tokens);
        const Tensor eps_pred =
            schedule_.to_epsilon(prediction, z, t, parameterization_);
        const float alpha = schedule_.alpha(t);
        const float alpha_bar = schedule_.alpha_bar(t);
        const float coef =
            schedule_.beta(t) / std::sqrt(1.0f - alpha_bar);
        // mu = (z - coef * eps) / sqrt(alpha)
        Tensor mean = ops::scale(ops::sub(z, ops::scale(eps_pred, coef)),
                                 1.0f / std::sqrt(alpha));
        if (t > 0) {
            const float sigma = std::sqrt(schedule_.beta(t));
            const Tensor noise = Tensor::randn(shape, rng);
            mean = ops::add(mean, ops::scale(noise, sigma));
        }
        z = std::move(mean);
    }
    return z;
}

std::vector<int> ddim_timestep_subsequence(const DdimConfig& config,
                                           int schedule_steps) {
    const int inference =
        std::clamp(config.inference_steps, 1, schedule_steps);
    std::vector<int> timesteps;
    timesteps.reserve(static_cast<std::size_t>(inference));
    for (int i = inference - 1; i >= 0; --i) {
        timesteps.push_back((i * schedule_steps) / inference);
    }
    return timesteps;
}

BatchedDdimScheduler::BatchedDdimScheduler(const UNet& unet,
                                           const NoiseSchedule& schedule)
    : unet_(unet), schedule_(schedule) {}

std::uint64_t BatchedDdimScheduler::admit(SamplerJob job) {
    assert(job.rng != nullptr);
    const std::uint64_t id = next_id_++;
    batch_metrics().joins->inc();

    Request request;
    request.id = id;
    request.timesteps =
        ddim_timestep_subsequence(job.config, schedule_.steps());
    switch (job.kind) {
        case SamplerJob::Kind::kSample:
            request.z = Tensor::randn(job.shape, *job.rng);
            break;
        case SamplerJob::Kind::kEdit: {
            if (!std::isfinite(job.strength)) {
                // NaN sails straight through std::clamp, and the
                // (1 - s) * (n - 1) size_t cast below would be UB.
                // Callers validate at their boundaries; this is the
                // engine's last line of defence.
                retire(id, Tensor(), /*cancelled=*/false);
                return id;
            }
            const float clamped = std::clamp(job.strength, 0.05f, 1.0f);
            // Start at the subsequence index whose timestep matches the
            // strength.
            request.cursor = static_cast<std::size_t>(
                (1.0f - clamped) *
                static_cast<float>(request.timesteps.size() - 1));
            const int t_start = request.timesteps[request.cursor];
            const Tensor noise = Tensor::randn(job.source.shape(), *job.rng);
            request.z = schedule_.q_sample(job.source, t_start, noise);
            break;
        }
        case SamplerJob::Kind::kInpaint:
            assert(job.mask.same_shape(job.source));
            request.z = Tensor::randn(job.source.shape(), *job.rng);
            break;
    }
    request.job = std::move(job);
    active_.push_back(std::move(request));
    return id;
}

void BatchedDdimScheduler::retire(std::uint64_t id, Tensor latent,
                                  bool cancelled) {
    finished_.push_back({id, std::move(latent), cancelled});
    batch_metrics().retired->inc();
}

std::vector<Tensor> BatchedDdimScheduler::batched_guided_eps(
    const std::vector<const Request*>& requests,
    const std::vector<const Tensor*>& latents,
    const std::vector<int>& timesteps) const {
    const int total_steps = schedule_.steps();

    // A CFG request contributes a conditional and an unconditional row
    // to the same forward (the sequential path ran them as two
    // denoise() calls; every UNet op is per-sample independent, so the
    // packed rows are bitwise identical to the separate calls). Rows
    // whose latent shapes differ — the half-resolution overload rung —
    // are partitioned into one forward per shape group, first-seen
    // order.
    struct Row {
        std::size_t request;
        bool unconditional;
    };
    std::vector<std::vector<int>> shapes;
    std::vector<std::vector<Row>> groups;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::vector<int>& shape = latents[i]->shape();
        std::size_t g = 0;
        while (g < shapes.size() && shapes[g] != shape) ++g;
        if (g == shapes.size()) {
            shapes.push_back(shape);
            groups.emplace_back();
        }
        groups[g].push_back({i, false});
        if (cfg_active(requests[i]->job)) groups[g].push_back({i, true});
    }

    std::vector<Tensor> eps_cond(requests.size());
    std::vector<Tensor> eps_uncond(requests.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const std::vector<Row>& rows = groups[g];
        const std::vector<int>& shape = shapes[g];
        const std::size_t per_row =
            static_cast<std::size_t>(tensor::shape_size(shape));
        Tensor packed({static_cast<int>(rows.size()), shape[0], shape[1],
                       shape[2]});
        std::vector<int> row_t;
        std::vector<Tensor> row_cond;
        row_t.reserve(rows.size());
        row_cond.reserve(rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const Row& row = rows[r];
            std::memcpy(packed.data() + r * per_row,
                        latents[row.request]->data(),
                        per_row * sizeof(float));
            row_t.push_back(timesteps[row.request]);
            row_cond.push_back(
                row.unconditional
                    ? Tensor()
                    : requests[row.request]->job.condition_tokens);
        }
        const Var out = unet_.forward(Var::constant(std::move(packed)),
                                      row_t, total_steps, row_cond);
        const Tensor& value = out.value();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const Row& row = rows[r];
            Tensor prediction(shape);
            std::memcpy(prediction.data(), value.data() + r * per_row,
                        per_row * sizeof(float));
            Tensor eps = schedule_.to_epsilon(
                prediction, *latents[row.request], timesteps[row.request],
                requests[row.request]->job.config.parameterization);
            (row.unconditional ? eps_uncond : eps_cond)[row.request] =
                std::move(eps);
        }
    }

    std::vector<Tensor> result(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!cfg_active(requests[i]->job)) {
            result[i] = std::move(eps_cond[i]);
            continue;
        }
        // eps = eps_uncond + g * (eps_cond - eps_uncond)
        result[i] = ops::add(
            eps_uncond[i],
            ops::scale(ops::sub(eps_cond[i], eps_uncond[i]),
                       requests[i]->job.config.guidance_scale));
    }
    return result;
}

std::size_t BatchedDdimScheduler::step() {
    // Step-boundary cancellation poll: the same point the sequential
    // loop polled, before any denoiser work.
    for (std::size_t i = 0; i < active_.size();) {
        Request& request = active_[i];
        if (request.job.config.should_cancel &&
            request.job.config.should_cancel()) {
            const std::uint64_t id = request.id;
            active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
            retire(id, Tensor(), /*cancelled=*/true);
        } else {
            ++i;
        }
    }
    if (active_.empty()) return 0;

    // Per-step timing feeds the aero_diffusion_step_ms histogram; raw
    // clock reads rather than an obs::Span because one span per
    // denoising step would flood the trace ring.
    const bool timed = obs::enabled();
    const std::int64_t step_start = timed ? obs::default_clock().now_ns() : 0;
    const std::size_t participants = active_.size();

    std::vector<const Request*> requests;
    std::vector<const Tensor*> latents;
    std::vector<int> step_t;
    requests.reserve(participants);
    latents.reserve(participants);
    step_t.reserve(participants);
    for (const Request& request : active_) {
        requests.push_back(&request);
        latents.push_back(&request.z);
        step_t.push_back(request.timesteps[request.cursor]);
    }
    std::vector<Tensor> eps = batched_guided_eps(requests, latents, step_t);

    // Per-request scalar coefficients: the exact math of the sequential
    // loop, evaluated at each request's own cursor.
    struct Coef {
        int t = 0;
        int t_prev = -1;
        float alpha_bar_prev = 1.0f;
        float sigma = 0.0f;
        float dir_coef = 0.0f;
    };
    std::vector<Coef> coef(participants);
    for (std::size_t i = 0; i < participants; ++i) {
        const Request& request = active_[i];
        Coef& c = coef[i];
        c.t = request.timesteps[request.cursor];
        c.t_prev = (request.cursor + 1 < request.timesteps.size())
                       ? request.timesteps[request.cursor + 1]
                       : -1;
        c.alpha_bar_prev =
            c.t_prev >= 0 ? schedule_.alpha_bar(c.t_prev) : 1.0f;
        c.sigma = request.job.config.eta *
                  std::sqrt((1.0f - c.alpha_bar_prev) /
                            (1.0f - schedule_.alpha_bar(c.t))) *
                  std::sqrt(1.0f -
                            schedule_.alpha_bar(c.t) / c.alpha_bar_prev);
        c.dir_coef = std::sqrt(std::max(
            1.0f - c.alpha_bar_prev - c.sigma * c.sigma, 0.0f));
    }
    const auto ddim_update = [&](const Coef& c, const Tensor& z,
                                 const Tensor& noise_estimate) {
        const Tensor z0 = schedule_.predict_z0(z, c.t, noise_estimate);
        return ops::add(ops::scale(z0, std::sqrt(c.alpha_bar_prev)),
                        ops::scale(noise_estimate, c.dir_coef));
    };

    // Heun predictor-corrector subset. Gate on the *config*, not the
    // per-step sigma: with eta > 0 sigma can still round to exactly 0
    // on flat stretches of alpha_bar (tiny beta), and the stochastic
    // path must never silently take the deterministic
    // predictor-corrector branch.
    std::vector<std::size_t> heun;
    for (std::size_t i = 0; i < participants; ++i) {
        const Request& request = active_[i];
        if (request.job.config.use_heun && request.job.config.eta == 0.0f &&
            coef[i].t_prev >= 0) {
            heun.push_back(i);
        }
    }
    if (!heun.empty()) {
        std::vector<Tensor> euler(heun.size());
        for (std::size_t k = 0; k < heun.size(); ++k) {
            euler[k] =
                ddim_update(coef[heun[k]], active_[heun[k]].z, eps[heun[k]]);
        }
        // The corrector doubles the NFE; poll cancellation again before
        // its second denoiser evaluation so deadline-cancellation
        // latency stays one evaluation, not one full Heun step.
        std::vector<std::size_t> live;
        for (std::size_t k = 0; k < heun.size(); ++k) {
            Request& request = active_[heun[k]];
            if (request.job.config.should_cancel &&
                request.job.config.should_cancel()) {
                request.mid_cancelled = true;
            } else {
                live.push_back(k);
            }
        }
        if (!live.empty()) {
            std::vector<const Request*> heun_requests;
            std::vector<const Tensor*> heun_latents;
            std::vector<int> heun_t;
            heun_requests.reserve(live.size());
            heun_latents.reserve(live.size());
            heun_t.reserve(live.size());
            for (const std::size_t k : live) {
                heun_requests.push_back(&active_[heun[k]]);
                heun_latents.push_back(&euler[k]);
                heun_t.push_back(coef[heun[k]].t_prev);
            }
            const std::vector<Tensor> eps2 =
                batched_guided_eps(heun_requests, heun_latents, heun_t);
            for (std::size_t j = 0; j < live.size(); ++j) {
                const std::size_t i = heun[live[j]];
                eps[i] = ops::scale(ops::add(eps[i], eps2[j]), 0.5f);
            }
        }
    }

    // Final per-request update: stochastic noise and the inpaint
    // re-imposition draw from each request's OWN rng, in the same order
    // as the sequential loop — the core of the bitwise contract.
    for (std::size_t i = 0; i < participants; ++i) {
        Request& request = active_[i];
        if (request.mid_cancelled) continue;
        const Coef& c = coef[i];
        Tensor next = ddim_update(c, request.z, eps[i]);
        if (c.sigma > 0.0f && c.t_prev >= 0) {
            next = ops::add(
                next, ops::scale(Tensor::randn(request.z.shape(),
                                               *request.job.rng),
                                 c.sigma));
        }
        if (request.job.kind == SamplerJob::Kind::kInpaint) {
            // Re-impose the known region at the new noise level.
            Tensor reference = request.job.source;
            if (c.t_prev >= 0) {
                const Tensor noise =
                    Tensor::randn(request.z.shape(), *request.job.rng);
                reference =
                    schedule_.q_sample(request.job.source, c.t_prev, noise);
            }
            // z = mask * z + (1 - mask) * reference
            Tensor kept = ops::mul(next, request.job.mask);
            Tensor imposed = ops::mul(
                reference,
                ops::add_scalar(ops::neg(request.job.mask), 1.0f));
            next = ops::add(kept, imposed);
        }
        request.z = std::move(next);
        ++request.cursor;
    }

    // A batched step amortises `participants` requests: each records
    // elapsed / participants, keeping the aero_diffusion_step_ms
    // histogram (the AIMD controller's delta-p99 signal) in
    // per-request units at every batch size.
    if (timed) {
        const double elapsed_ms =
            static_cast<double>(obs::default_clock().now_ns() - step_start) *
            1e-6;
        const double per_request =
            elapsed_ms / static_cast<double>(participants);
        for (std::size_t i = 0; i < participants; ++i) {
            step_histogram().observe(per_request);
        }
        batch_metrics().size->observe(static_cast<double>(participants));
    }
    batch_metrics().steps->inc();

    // Retire finished and mid-step-cancelled jobs; the rest carry over
    // to the next step boundary, where new admissions may join them.
    for (std::size_t i = 0; i < active_.size();) {
        Request& request = active_[i];
        const bool done = request.cursor >= request.timesteps.size();
        if (request.mid_cancelled || done) {
            const std::uint64_t id = request.id;
            const bool cancelled = request.mid_cancelled;
            Tensor latent = cancelled ? Tensor() : std::move(request.z);
            active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
            retire(id, std::move(latent), cancelled);
        } else {
            ++i;
        }
    }
    return active_.size();
}

std::vector<BatchedDdimScheduler::Finished>
BatchedDdimScheduler::take_finished() {
    std::vector<Finished> finished = std::move(finished_);
    finished_.clear();
    return finished;
}

Tensor run_sampler_job(const UNet& unet, const NoiseSchedule& schedule,
                       SamplerJob job) {
    BatchedDdimScheduler scheduler(unet, schedule);
    const std::uint64_t id = scheduler.admit(std::move(job));
    while (scheduler.step() > 0) {
    }
    for (BatchedDdimScheduler::Finished& finished :
         scheduler.take_finished()) {
        if (finished.id == id) return std::move(finished.latent);
    }
    return Tensor();
}

Tensor DdimSampler::sample(const std::vector<int>& shape,
                           const Tensor& condition_tokens,
                           util::Rng& rng) const {
    SamplerJob job;
    job.kind = SamplerJob::Kind::kSample;
    job.shape = shape;
    job.condition_tokens = condition_tokens;
    job.config = config_;
    job.rng = &rng;
    return run_sampler_job(unet_, schedule_, std::move(job));
}

Tensor DdimSampler::edit(const Tensor& source_latent,
                         const Tensor& condition_tokens, float strength,
                         util::Rng& rng) const {
    SamplerJob job;
    job.kind = SamplerJob::Kind::kEdit;
    job.source = source_latent;
    job.strength = strength;
    job.condition_tokens = condition_tokens;
    job.config = config_;
    job.rng = &rng;
    return run_sampler_job(unet_, schedule_, std::move(job));
}

Tensor DdimSampler::inpaint(const Tensor& source_latent, const Tensor& mask,
                            const Tensor& condition_tokens,
                            util::Rng& rng) const {
    assert(mask.same_shape(source_latent));
    SamplerJob job;
    job.kind = SamplerJob::Kind::kInpaint;
    job.source = source_latent;
    job.mask = mask;
    job.condition_tokens = condition_tokens;
    job.config = config_;
    job.rng = &rng;
    return run_sampler_job(unet_, schedule_, std::move(job));
}

}  // namespace aero::diffusion
