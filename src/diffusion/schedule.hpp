#pragma once
// DDPM noise schedule (Eq. 4): linear beta ramp beta_1 < ... < beta_T,
// with the cumulative-product quantities needed by training (q_sample)
// and by both samplers. Paper settings: T = 1000, beta in
// [0.001, 0.012]; the library default keeps the same beta range over a
// configurable (smaller) T so CPU experiments stay tractable.

#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace aero::diffusion {

struct ScheduleConfig {
    int steps = 64;
    /// Per-step noise range AT the reference discretisation below. When
    /// `steps != reference_steps`, betas are rescaled by
    /// reference_steps/steps so the TOTAL signal decay matches the
    /// reference process -- otherwise a shortened schedule never reaches
    /// pure noise and sampling starts off-distribution.
    float beta_start = 0.001f;
    float beta_end = 0.012f;
    int reference_steps = 1000;

    /// The exact configuration used in the paper's experiments.
    static ScheduleConfig paper() { return {1000, 0.001f, 0.012f, 1000}; }
};

/// What the denoiser predicts. kEpsilon is the paper's Eq. 6 target;
/// kV ("v-prediction", v = sqrt(ab) eps - sqrt(1-ab) z0) balances the
/// information across timesteps so conditioning pays off under small
/// training budgets -- the latent models default to it (documented
/// deviation, see DESIGN.md).
enum class Parameterization { kEpsilon, kV };

class NoiseSchedule {
public:
    explicit NoiseSchedule(const ScheduleConfig& config = {});

    int steps() const { return static_cast<int>(beta_.size()); }
    float beta(int t) const { return beta_[static_cast<std::size_t>(t)]; }
    float alpha(int t) const { return alpha_[static_cast<std::size_t>(t)]; }
    /// Cumulative product of alphas up to and including t.
    float alpha_bar(int t) const {
        return alpha_bar_[static_cast<std::size_t>(t)];
    }

    /// Forward diffusion draw: z_t = sqrt(a-bar_t) z_0 + sqrt(1-a-bar_t) eps.
    tensor::Tensor q_sample(const tensor::Tensor& z0, int t,
                            const tensor::Tensor& eps) const;

    /// Signal/noise mixing coefficients at step t.
    float sqrt_alpha_bar(int t) const;
    float sqrt_one_minus_alpha_bar(int t) const;

    /// Predicts z_0 from z_t and the predicted noise (epsilon
    /// parameterisation inverted).
    tensor::Tensor predict_z0(const tensor::Tensor& zt, int t,
                              const tensor::Tensor& eps_pred) const;

    /// Training target for the chosen parameterisation.
    tensor::Tensor training_target(const tensor::Tensor& z0,
                                   const tensor::Tensor& eps, int t,
                                   Parameterization parameterization) const;
    /// Converts a model prediction to epsilon.
    tensor::Tensor to_epsilon(const tensor::Tensor& prediction,
                              const tensor::Tensor& zt, int t,
                              Parameterization parameterization) const;
    /// Converts a model prediction to z_0.
    tensor::Tensor to_z0(const tensor::Tensor& prediction,
                         const tensor::Tensor& zt, int t,
                         Parameterization parameterization) const;

private:
    std::vector<float> beta_;
    std::vector<float> alpha_;
    std::vector<float> alpha_bar_;
};

}  // namespace aero::diffusion
