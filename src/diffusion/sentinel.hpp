#pragma once
// Divergence sentinel for training loops.
//
// Watches per-step loss and gradient norms, keeps periodic snapshots of
// the parameters, and on a NaN/Inf or a loss spike (tail-EMA threshold)
// rolls the model back to the last good snapshot and resumes with a
// reduced learning rate. After `max_rollbacks` recoveries the run is
// declared diverged so callers can stop instead of burning budget on a
// poisoned model.
//
// Thread confinement: the sentinel, its snapshots, and the trainer/
// checkpoint state it restores are owned by the single training thread —
// no AERO_GUARDED_BY annotations, by design (DESIGN.md section 10). The
// serving layer only ever shares a pipeline read-only after training
// completes; do not call observe()/rollback concurrently with serving.

#include <vector>

#include "autograd/var.hpp"
#include "nn/optimizer.hpp"
#include "util/fault.hpp"

namespace aero::diffusion {

struct SentinelConfig {
    bool enabled = true;
    /// A finite loss above `spike_factor` x the tail EMA counts as a
    /// spike (checked only after `warmup_steps`, once the EMA is real).
    float spike_factor = 10.0f;
    /// EMA smoothing for the loss tail: ema = beta*ema + (1-beta)*loss.
    float ema_beta = 0.9f;
    int warmup_steps = 8;
    /// Steps between good-state snapshots (1 = snapshot every step).
    int snapshot_interval = 10;
    /// Learning-rate multiplier applied on every rollback.
    float lr_decay = 0.5f;
    /// Rollbacks allowed before the run is declared diverged.
    int max_rollbacks = 4;
};

class DivergenceSentinel {
public:
    enum class Action {
        kProceed,   ///< step is healthy; apply the optimizer update
        kRollback,  ///< params were restored; skip this update
        kAbort,     ///< rollback budget exhausted; stop training
    };

    /// Snapshots `params` immediately (so even step 0 can roll back) and
    /// adjusts `opt`'s learning rate on recovery. Both must outlive the
    /// sentinel.
    DivergenceSentinel(std::vector<autograd::Var> params, nn::Adam& opt,
                       const SentinelConfig& config);

    /// Inspects one step's loss and pre-clip gradient norm BEFORE the
    /// optimizer update is applied; see Action for what the caller must
    /// do. With `enabled == false` always returns kProceed.
    Action observe(int step, float loss, float grad_norm);

    int nan_events() const { return nan_events_; }
    int spike_events() const { return spike_events_; }
    int rollbacks() const { return rollbacks_; }
    bool diverged() const { return diverged_; }
    /// Tail EMA of the loss (0 until the first healthy step).
    float smoothed_loss() const { return ema_; }

private:
    void snapshot();
    Action rollback(int step, const char* reason);

    std::vector<autograd::Var> params_;
    nn::Adam* opt_;
    SentinelConfig config_;
    std::vector<tensor::Tensor> good_state_;
    float ema_ = 0.0f;
    bool ema_primed_ = false;
    int healthy_steps_ = 0;
    int nan_events_ = 0;
    int spike_events_ = 0;
    int rollbacks_ = 0;
    bool diverged_ = false;
};

// ---- shared fault-injection points ------------------------------------------
// Training loops call these with their (possibly null) injector; faults
// armed for the named points deliver NaNs exactly where real numerical
// failures would appear.

/// "param": poisons the first weight before the forward pass.
void inject_param_fault(util::FaultInjector* injector, int step,
                        std::vector<autograd::Var>& params);

/// "grad": poisons the first available gradient after backward.
void inject_grad_fault(util::FaultInjector* injector, int step,
                       std::vector<autograd::Var>& params);

/// "loss" + armed spikes: returns the (possibly corrupted) loss value.
float inject_loss_fault(util::FaultInjector* injector, int step, float value);

}  // namespace aero::diffusion
