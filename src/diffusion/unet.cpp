#include "diffusion/unet.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace aero::diffusion {

namespace ag = aero::autograd;

TimeEmbedding::TimeEmbedding(int time_dim, util::Rng& rng)
    : time_dim_(time_dim),
      fc1_(time_dim, time_dim * 2, rng),
      fc2_(time_dim * 2, time_dim, rng) {
    register_child(fc1_);
    register_child(fc2_);
}

Var TimeEmbedding::forward(const std::vector<int>& t, int total_steps) const {
    const int n = static_cast<int>(t.size());
    const int half = time_dim_ / 2;
    Tensor features({n, time_dim_});
    for (int i = 0; i < n; ++i) {
        const float pos = static_cast<float>(t[static_cast<std::size_t>(i)]) /
                          static_cast<float>(total_steps);
        for (int k = 0; k < half; ++k) {
            const float freq = std::pow(
                10000.0f, -static_cast<float>(k) / static_cast<float>(half));
            const float angle =
                pos * freq * 2.0f * std::numbers::pi_v<float> * 50.0f;
            features[i * time_dim_ + k] = std::sin(angle);
            features[i * time_dim_ + half + k] = std::cos(angle);
        }
    }
    return fc2_.forward(ag::silu(fc1_.forward(Var::constant(features))));
}

ResBlock::ResBlock(int in_channels, int out_channels, int time_dim, int groups,
                   util::Rng& rng)
    : needs_projection_(in_channels != out_channels),
      norm1_(in_channels, groups),
      conv1_(in_channels, out_channels, 3, 1, 1, rng),
      time_proj_(time_dim, out_channels, rng),
      norm2_(out_channels, groups),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      skip_(in_channels, out_channels, 1, 1, 0, rng, /*with_bias=*/false) {
    register_child(norm1_);
    register_child(conv1_);
    register_child(time_proj_);
    register_child(norm2_);
    register_child(conv2_);
    if (needs_projection_) register_child(skip_);
}

Var ResBlock::forward(const Var& x, const Var& time_embedding) const {
    Var h = conv1_.forward(ag::silu(norm1_.forward(x)));
    h = ag::add_spatial_bias(h, time_proj_.forward(time_embedding));
    h = conv2_.forward(ag::silu(norm2_.forward(h)));
    const Var shortcut = needs_projection_ ? skip_.forward(x) : x;
    return ag::add(h, shortcut);
}

UNet::UNet(const UNetConfig& config, util::Rng& rng)
    : config_(config),
      time_embedding_(config.time_dim, rng),
      cond_pool_proj_(config.cond_dim, config.time_dim, rng),
      conv_in_(config.in_channels, config.base_channels, 3, 1, 1, rng),
      down_block_(config.base_channels, config.base_channels, config.time_dim,
                  config.groups, rng),
      mid_block_in_(config.base_channels, config.base_channels * 2,
                    config.time_dim, config.groups, rng),
      cond_proj_(config.cond_dim, config.base_channels * 2, rng),
      attn_norm_(config.base_channels * 2),
      cross_attn_(config.base_channels * 2, config.heads, rng),
      mid_block_out_(config.base_channels * 2, config.base_channels * 2,
                     config.time_dim, config.groups, rng),
      up_block_(config.base_channels * 3, config.base_channels,
                config.time_dim, config.groups, rng),
      norm_out_(config.base_channels, config.groups),
      conv_out_(config.base_channels, config.in_channels, 3, 1, 1, rng) {
    register_child(time_embedding_);
    register_child(cond_pool_proj_);
    register_child(conv_in_);
    register_child(down_block_);
    register_child(mid_block_in_);
    register_child(cond_proj_);
    register_child(attn_norm_);
    register_child(cross_attn_);
    register_child(mid_block_out_);
    register_child(up_block_);
    register_child(norm_out_);
    register_child(conv_out_);
    null_token_ = register_parameter(
        Tensor::randn({1, config.cond_dim}, rng, 0.0f, 0.2f));
    // Cross-attention fades in on the residual path.
    cross_attn_.init_output_zero();
}

Var UNet::attend(const Var& features, const Var& condition_tokens) const {
    // features: [1, 2C, h, w] for ONE sample.
    const int channels = features.value().dim(1);
    const int tokens = features.value().dim(2) * features.value().dim(3);

    const Var context = condition_tokens.defined()
                            ? cond_proj_.forward(condition_tokens)
                            : cond_proj_.forward(null_token_);

    const Var seq = ag::transpose2d(
        ag::reshape(features, {channels, tokens}));  // [T, 2C]
    const Var attended =
        ag::add(seq, cross_attn_.forward(attn_norm_.forward(seq), context));
    return ag::reshape(ag::transpose2d(attended),
                       {1, channels, features.value().dim(2),
                        features.value().dim(3)});
}

Var UNet::forward(const Var& z, const std::vector<int>& t, int total_steps,
                  const std::vector<Tensor>& condition_tokens) const {
    std::vector<Var> vars;
    vars.reserve(condition_tokens.size());
    for (const Tensor& tokens : condition_tokens) {
        vars.push_back(tokens.empty() ? Var() : Var::constant(tokens));
    }
    return forward(z, t, total_steps, vars);
}

Var UNet::forward(const Var& z, const std::vector<int>& t, int total_steps,
                  const std::vector<Var>& condition_tokens) const {
    const int n = z.value().dim(0);
    assert(static_cast<int>(t.size()) == n);
    assert(static_cast<int>(condition_tokens.size()) == n);

    Var temb = time_embedding_.forward(t, total_steps);  // [N, time]

    // FiLM-style injection: the mean-pooled condition is projected into
    // the time-embedding space and added per sample, so conditioning
    // modulates every residual block (concatenation into each hidden
    // layer, Sec. IV-C-3) -- the bottleneck cross-attention then refines
    // spatial detail on top.
    {
        std::vector<Var> pooled_rows;
        pooled_rows.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const Var& tokens =
                condition_tokens[static_cast<std::size_t>(i)];
            const Var source = tokens.defined() ? tokens : null_token_;
            const int k = source.value().dim(0);
            Tensor averaging({1, k});
            for (int j = 0; j < k; ++j) {
                averaging[j] = 1.0f / static_cast<float>(k);
            }
            pooled_rows.push_back(
                ag::matmul(Var::constant(std::move(averaging)), source));
        }
        const Var pooled =
            n == 1 ? pooled_rows.front() : ag::concat(pooled_rows, 0);
        temb = ag::add(temb, cond_pool_proj_.forward(pooled));
    }

    Var h = conv_in_.forward(z);
    const Var skip = down_block_.forward(h, temb);  // [N, C, H, W]
    Var mid = ag::avg_pool2x(skip);
    mid = mid_block_in_.forward(mid, temb);         // [N, 2C, H/2, W/2]

    // Cross-attention runs per sample: each has its own condition set.
    std::vector<Var> attended;
    attended.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const Var sample = ag::slice(mid, 0, i, i + 1);
        attended.push_back(
            attend(sample, condition_tokens[static_cast<std::size_t>(i)]));
    }
    mid = n == 1 ? attended.front() : ag::concat(attended, 0);

    mid = mid_block_out_.forward(mid, temb);
    Var up = ag::upsample_nearest2x(mid);           // [N, 2C, H, W]
    up = ag::concat({up, skip}, 1);                 // [N, 3C, H, W]
    up = up_block_.forward(up, temb);
    return conv_out_.forward(ag::silu(norm_out_.forward(up)));
}

Tensor UNet::denoise(const Tensor& z, int t, int total_steps,
                     const Tensor& condition_tokens) const {
    assert(z.rank() == 3);  // [C, H, W]
    const Var batched = Var::constant(
        z.reshaped({1, z.dim(0), z.dim(1), z.dim(2)}));
    const Var out = forward(batched, {t}, total_steps, {condition_tokens});
    return out.value().reshaped({z.dim(0), z.dim(1), z.dim(2)});
}

}  // namespace aero::diffusion
