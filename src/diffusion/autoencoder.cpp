#include "diffusion/autoencoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aero::diffusion {

namespace ag = aero::autograd;

LatentAutoencoder::LatentAutoencoder(const AutoencoderConfig& config,
                                     util::Rng& rng)
    : config_(config),
      enc1_(3, config.base_channels, 3, 2, 1, rng),
      enc_norm1_(config.base_channels, config.groups),
      enc2_(config.base_channels, config.base_channels, 3, 2, 1, rng),
      enc_norm2_(config.base_channels, config.groups),
      enc3_(config.base_channels, config.latent_channels, 3, 1, 1, rng),
      dec1_(config.latent_channels, config.base_channels, 3, 1, 1, rng),
      dec_norm1_(config.base_channels, config.groups),
      dec2_(config.base_channels, config.base_channels, 3, 1, 1, rng),
      dec_norm2_(config.base_channels, config.groups),
      dec3_(config.base_channels, 3, 3, 1, 1, rng) {
    register_child(enc1_);
    register_child(enc_norm1_);
    register_child(enc2_);
    register_child(enc_norm2_);
    register_child(enc3_);
    register_child(dec1_);
    register_child(dec_norm1_);
    register_child(dec2_);
    register_child(dec_norm2_);
    register_child(dec3_);
}

Var LatentAutoencoder::encode(const Var& images) const {
    Var h = ag::silu(enc_norm1_.forward(enc1_.forward(images)));
    h = ag::silu(enc_norm2_.forward(enc2_.forward(h)));
    return enc3_.forward(h);
}

Var LatentAutoencoder::decode(const Var& latents) const {
    Var h = ag::silu(dec_norm1_.forward(dec1_.forward(latents)));
    h = ag::upsample_nearest2x(h);
    h = ag::silu(dec_norm2_.forward(dec2_.forward(h)));
    h = ag::upsample_nearest2x(h);
    return ag::tanh(dec3_.forward(h));
}

Tensor LatentAutoencoder::encode_image(const image::Image& img) const {
    image::Image sized = img;
    if (img.width() != config_.image_size ||
        img.height() != config_.image_size) {
        sized = image::resize_bilinear(img, config_.image_size,
                                       config_.image_size);
    }
    const Var latent = encode(Var::constant(sized.to_tensor_chw().reshaped(
        {1, 3, config_.image_size, config_.image_size})));
    const int s = config_.latent_size();
    return latent.value().reshaped({config_.latent_channels, s, s});
}

image::Image LatentAutoencoder::decode_latent(const Tensor& latent) const {
    assert(latent.rank() == 3);
    const int s = config_.latent_size();
    const Var out = decode(Var::constant(
        latent.reshaped({1, config_.latent_channels, s, s})));
    return image::Image::from_tensor_chw(out.value().reshaped(
        {3, config_.image_size, config_.image_size}));
}

AutoencoderTrainStats train_autoencoder(LatentAutoencoder& autoencoder,
                                        const std::vector<image::Image>& images,
                                        const AutoencoderTrainConfig& config,
                                        util::Rng& rng) {
    assert(!images.empty());
    const int size = autoencoder.config().image_size;

    std::vector<Tensor> tensors;
    tensors.reserve(images.size());
    for (const image::Image& img : images) {
        image::Image sized = img;
        if (sized.width() != size) {
            sized = image::resize_bilinear(sized, size, size);
        }
        tensors.push_back(sized.to_tensor_chw().reshaped({1, 3, size, size}));
    }

    nn::Adam opt(autoencoder.parameters(),
                 {.lr = config.lr, .weight_decay = 1e-5f});
    AutoencoderTrainStats stats;
    const int batch =
        std::min<int>(config.batch_size, static_cast<int>(tensors.size()));
    for (int step = 0; step < config.steps; ++step) {
        std::vector<Var> batch_images;
        for (int b = 0; b < batch; ++b) {
            const int i =
                rng.uniform_int(0, static_cast<int>(tensors.size()) - 1);
            batch_images.push_back(
                Var::constant(tensors[static_cast<std::size_t>(i)]));
        }
        const Var input = ag::concat(batch_images, 0);
        opt.zero_grad();
        const Var recon = autoencoder.decode(autoencoder.encode(input));
        const Var loss = ag::mse_loss(recon, input);
        loss.backward();
        opt.clip_grad_norm(5.0f);
        opt.step();
        if (step == 0) stats.first_loss = loss.value()[0];
        stats.final_loss = loss.value()[0];
    }

    // Latent normalisation scale (Stable Diffusion's 0.18215 analogue):
    // 1/std of encoded training latents.
    double sum = 0.0;
    double sum_sq = 0.0;
    long count = 0;
    for (std::size_t i = 0; i < tensors.size();
         i += std::max<std::size_t>(1, tensors.size() / 16)) {
        const Var z = autoencoder.encode(Var::constant(tensors[i]));
        for (float v : z.value()) {
            sum += v;
            sum_sq += static_cast<double>(v) * v;
            ++count;
        }
    }
    if (count > 1) {
        const double mean = sum / static_cast<double>(count);
        const double var = sum_sq / static_cast<double>(count) - mean * mean;
        if (var > 1e-8) {
            stats.latent_scale = static_cast<float>(1.0 / std::sqrt(var));
        }
    }
    return stats;
}

}  // namespace aero::diffusion
