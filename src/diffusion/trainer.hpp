#pragma once
// Diffusion training loop minimising Eq. 6:
//   L = E_{z0, eps, t, C} || eps - eps_theta(z_t, t, C) ||^2
// with classifier-free-guidance condition dropout and a divergence
// sentinel (NaN/spike detection, snapshot rollback) guarding every step.

#include "diffusion/schedule.hpp"
#include "diffusion/sentinel.hpp"
#include "diffusion/unet.hpp"
#include "nn/optimizer.hpp"
#include "util/fault.hpp"

namespace aero::diffusion {

struct DiffusionTrainConfig {
    int steps = 300;
    int batch_size = 6;
    float lr = 2e-3f;
    float weight_decay = 1e-5f;
    /// Probability of replacing a sample's condition with the null token
    /// during training (enables classifier-free guidance).
    float condition_dropout = 0.1f;
    /// Prediction target (must match the sampler's setting).
    Parameterization parameterization = Parameterization::kEpsilon;
    /// When > 0, an exponential moving average of the weights is kept
    /// and applied at the end of training (sampling uses the average).
    float ema_decay = 0.99f;
    /// Global L2 gradient-norm clip applied every step.
    float grad_clip = 5.0f;
    /// Divergence detection / rollback policy.
    SentinelConfig sentinel;
    /// Test-only fault injection; see util/fault.hpp. The trainer
    /// exposes the points "param" (poisons a weight before the forward
    /// pass), "grad" (poisons a gradient after backward), "loss"
    /// (poisons the observed loss), plus `arm_spike` on the loss.
    util::FaultInjector* fault_injector = nullptr;
};

struct DiffusionTrainStats {
    float first_loss = 0.0f;
    float final_loss = 0.0f;
    /// Mean loss over the last quarter of training (smoother signal).
    float tail_loss = 0.0f;
    /// Steps rejected for a non-finite loss or gradient.
    int nan_events = 0;
    /// Snapshot rollbacks performed (NaN events + loss spikes).
    int rollbacks = 0;
    /// True when the rollback budget was exhausted and training stopped.
    bool diverged = false;
};

/// Trains `unet` on pre-encoded latents ([C,H,W] each) and their
/// per-sample condition token matrices ([K_i, cond_dim]; empty tensors
/// mean "always unconditional").
DiffusionTrainStats train_diffusion(
    UNet& unet, const NoiseSchedule& schedule,
    const std::vector<Tensor>& latents,
    const std::vector<Tensor>& condition_tokens,
    const DiffusionTrainConfig& config, util::Rng& rng);

}  // namespace aero::diffusion
