#include "diffusion/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace aero::diffusion {

NoiseSchedule::NoiseSchedule(const ScheduleConfig& config) {
    assert(config.steps >= 2);
    assert(config.beta_start < config.beta_end);
    beta_.resize(static_cast<std::size_t>(config.steps));
    alpha_.resize(beta_.size());
    alpha_bar_.resize(beta_.size());
    const float rescale = static_cast<float>(config.reference_steps) /
                          static_cast<float>(config.steps);
    float running = 1.0f;
    for (int t = 0; t < config.steps; ++t) {
        const float frac =
            static_cast<float>(t) / static_cast<float>(config.steps - 1);
        const float reference_beta =
            config.beta_start + (config.beta_end - config.beta_start) * frac;
        beta_[static_cast<std::size_t>(t)] =
            std::min(reference_beta * rescale, 0.35f);
        alpha_[static_cast<std::size_t>(t)] =
            1.0f - beta_[static_cast<std::size_t>(t)];
        running *= alpha_[static_cast<std::size_t>(t)];
        alpha_bar_[static_cast<std::size_t>(t)] = running;
    }
}

float NoiseSchedule::sqrt_alpha_bar(int t) const {
    return std::sqrt(alpha_bar(t));
}

float NoiseSchedule::sqrt_one_minus_alpha_bar(int t) const {
    return std::sqrt(1.0f - alpha_bar(t));
}

tensor::Tensor NoiseSchedule::q_sample(const tensor::Tensor& z0, int t,
                                       const tensor::Tensor& eps) const {
    assert(z0.same_shape(eps));
    return tensor::add(tensor::scale(z0, sqrt_alpha_bar(t)),
                       tensor::scale(eps, sqrt_one_minus_alpha_bar(t)));
}

tensor::Tensor NoiseSchedule::predict_z0(const tensor::Tensor& zt, int t,
                                         const tensor::Tensor& eps_pred) const {
    const float inv = 1.0f / sqrt_alpha_bar(t);
    return tensor::scale(
        tensor::sub(zt, tensor::scale(eps_pred, sqrt_one_minus_alpha_bar(t))),
        inv);
}

tensor::Tensor NoiseSchedule::training_target(
    const tensor::Tensor& z0, const tensor::Tensor& eps, int t,
    Parameterization parameterization) const {
    if (parameterization == Parameterization::kEpsilon) return eps;
    // v = sqrt(ab) eps - sqrt(1-ab) z0
    return tensor::sub(tensor::scale(eps, sqrt_alpha_bar(t)),
                       tensor::scale(z0, sqrt_one_minus_alpha_bar(t)));
}

tensor::Tensor NoiseSchedule::to_epsilon(
    const tensor::Tensor& prediction, const tensor::Tensor& zt, int t,
    Parameterization parameterization) const {
    if (parameterization == Parameterization::kEpsilon) return prediction;
    // eps = sqrt(1-ab) z_t + sqrt(ab) v
    return tensor::add(tensor::scale(zt, sqrt_one_minus_alpha_bar(t)),
                       tensor::scale(prediction, sqrt_alpha_bar(t)));
}

tensor::Tensor NoiseSchedule::to_z0(const tensor::Tensor& prediction,
                                    const tensor::Tensor& zt, int t,
                                    Parameterization parameterization) const {
    if (parameterization == Parameterization::kEpsilon) {
        return predict_z0(zt, t, prediction);
    }
    // z0 = sqrt(ab) z_t - sqrt(1-ab) v
    return tensor::sub(tensor::scale(zt, sqrt_alpha_bar(t)),
                       tensor::scale(prediction, sqrt_one_minus_alpha_bar(t)));
}

}  // namespace aero::diffusion
