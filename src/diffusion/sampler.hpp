#pragma once
// Reverse-process samplers:
//  * DdpmSampler -- full-T ancestral sampling (training-time scheduler).
//  * DdimSampler -- deterministic subsequence sampling with classifier-
//    free guidance (the paper: 250 DDIM steps, guidance scale 7.0).

#include <functional>

#include "diffusion/schedule.hpp"
#include "diffusion/unet.hpp"

namespace aero::diffusion {

class DdpmSampler {
public:
    DdpmSampler(const UNet& unet, const NoiseSchedule& schedule,
                Parameterization parameterization = Parameterization::kEpsilon)
        : unet_(unet),
          schedule_(schedule),
          parameterization_(parameterization) {}

    /// Draws one sample of the given latent shape [C,H,W], conditioned
    /// on `condition_tokens` (empty tensor = unconditional).
    Tensor sample(const std::vector<int>& shape,
                  const Tensor& condition_tokens, util::Rng& rng) const;

private:
    const UNet& unet_;
    const NoiseSchedule& schedule_;
    Parameterization parameterization_;
};

struct DdimConfig {
    int inference_steps = 16;
    float guidance_scale = 7.0f;  ///< 1.0 disables classifier-free guidance
    float eta = 0.0f;             ///< 0 = deterministic DDIM
    Parameterization parameterization = Parameterization::kEpsilon;
    /// Heun's method: a second denoiser evaluation per step (predictor-
    /// corrector on the probability-flow ODE). Doubles the NFE for a
    /// higher-order update. Only meaningful on the probability-flow ODE,
    /// so the sampler IGNORES this flag whenever eta > 0 — the gate is
    /// the configured eta itself, not the per-step sigma (which can
    /// round to 0 on flat alpha_bar stretches even with eta > 0).
    bool use_heun = false;
    /// Cooperative cancellation, polled before every denoising step
    /// (serving deadlines). When it returns true the sampler abandons
    /// the run and returns an empty tensor — never a half-denoised
    /// latent that could be mistaken for a finished sample.
    std::function<bool()> should_cancel;

    /// The paper's inference configuration.
    static DdimConfig paper() {
        DdimConfig config;
        config.inference_steps = 250;
        config.guidance_scale = 7.0f;
        config.eta = 0.0f;
        config.parameterization = Parameterization::kEpsilon;
        return config;
    }
};

class DdimSampler {
public:
    DdimSampler(const UNet& unet, const NoiseSchedule& schedule,
                const DdimConfig& config = {})
        : unet_(unet), schedule_(schedule), config_(config) {}

    Tensor sample(const std::vector<int>& shape,
                  const Tensor& condition_tokens, util::Rng& rng) const;

    /// SDEdit-style image-to-image: noises `source_latent` to
    /// `strength` * T and denoises under the new condition. strength in
    /// (0, 1]; low strength stays close to the source, 1.0 equals
    /// sample(). Used for viewpoint transitions anchored on a reference.
    Tensor edit(const Tensor& source_latent, const Tensor& condition_tokens,
                float strength, util::Rng& rng) const;

    /// RePaint-style inpainting: regenerates only where `mask` is 1
    /// (same shape as the latent), re-imposing the source elsewhere at
    /// every step.
    Tensor inpaint(const Tensor& source_latent, const Tensor& mask,
                   const Tensor& condition_tokens, util::Rng& rng) const;

    const DdimConfig& config() const { return config_; }

private:
    /// Noise prediction with classifier-free guidance applied.
    Tensor guided_eps(const Tensor& z, int t,
                      const Tensor& condition_tokens) const;

    /// Core DDIM loop from `z` over the timestep subsequence starting at
    /// index `first_step`. When `keep` is non-null, entries where keep==0
    /// are re-imposed from `source` (q-sampled to the current t) after
    /// every step.
    Tensor run(Tensor z, std::size_t first_step,
               const std::vector<int>& timesteps,
               const Tensor& condition_tokens, const Tensor* keep_mask,
               const Tensor* source, util::Rng& rng) const;

    std::vector<int> timestep_subsequence() const;

    const UNet& unet_;
    const NoiseSchedule& schedule_;
    DdimConfig config_;
};

}  // namespace aero::diffusion
