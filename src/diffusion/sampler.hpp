#pragma once
// Reverse-process samplers:
//  * DdpmSampler -- full-T ancestral sampling (training-time scheduler).
//  * DdimSampler -- deterministic subsequence sampling with classifier-
//    free guidance (the paper: 250 DDIM steps, guidance scale 7.0).
//  * BatchedDdimScheduler -- continuous cross-request step batching
//    (DESIGN.md §16): packs the latents of every in-flight sampling job
//    into one batched UNet forward per denoising step, admits new jobs
//    at step boundaries, and retires finished/cancelled jobs without
//    stalling the rest of the batch. DdimSampler::sample/edit/inpaint
//    are batch-of-one wrappers over this same engine, so there is
//    exactly one DDIM update implementation in the codebase and the
//    batched path is bitwise identical to the sequential one at every
//    batch size.

#include <cstdint>
#include <functional>
#include <vector>

#include "diffusion/schedule.hpp"
#include "diffusion/unet.hpp"

namespace aero::diffusion {

class DdpmSampler {
public:
    DdpmSampler(const UNet& unet, const NoiseSchedule& schedule,
                Parameterization parameterization = Parameterization::kEpsilon)
        : unet_(unet),
          schedule_(schedule),
          parameterization_(parameterization) {}

    /// Draws one sample of the given latent shape [C,H,W], conditioned
    /// on `condition_tokens` (empty tensor = unconditional).
    Tensor sample(const std::vector<int>& shape,
                  const Tensor& condition_tokens, util::Rng& rng) const;

private:
    const UNet& unet_;
    const NoiseSchedule& schedule_;
    Parameterization parameterization_;
};

struct DdimConfig {
    int inference_steps = 16;
    float guidance_scale = 7.0f;  ///< 1.0 disables classifier-free guidance
    float eta = 0.0f;             ///< 0 = deterministic DDIM
    Parameterization parameterization = Parameterization::kEpsilon;
    /// Heun's method: a second denoiser evaluation per step (predictor-
    /// corrector on the probability-flow ODE). Doubles the NFE for a
    /// higher-order update. Only meaningful on the probability-flow ODE,
    /// so the sampler IGNORES this flag whenever eta > 0 — the gate is
    /// the configured eta itself, not the per-step sigma (which can
    /// round to 0 on flat alpha_bar stretches even with eta > 0).
    bool use_heun = false;
    /// Cooperative cancellation, polled before every denoising step AND
    /// before the Heun corrector's second denoiser evaluation (the
    /// corrector doubles the NFE, so a step-top-only poll would double
    /// deadline-cancellation latency). When it returns true the sampler
    /// abandons the run and returns an empty tensor — never a
    /// half-denoised latent that could be mistaken for a finished
    /// sample.
    std::function<bool()> should_cancel;

    /// The paper's inference configuration.
    static DdimConfig paper() {
        DdimConfig config;
        config.inference_steps = 250;
        config.guidance_scale = 7.0f;
        config.eta = 0.0f;
        config.parameterization = Parameterization::kEpsilon;
        return config;
    }
};

/// The DDIM timestep subsequence for `config` over a `schedule_steps`-
/// step schedule, high noise first.
std::vector<int> ddim_timestep_subsequence(const DdimConfig& config,
                                           int schedule_steps);

/// One sampling job for the batching engine: everything one
/// DdimSampler::sample/edit/inpaint call would take as arguments. `rng`
/// points at the CALLER's stream — the engine draws from that exact
/// stream in the exact order the sequential path would, which is what
/// makes batched output bitwise identical and leaves the stream in the
/// same post-run state. The Rng (and source/mask storage) must stay
/// valid and untouched by the caller until the job retires.
struct SamplerJob {
    enum class Kind { kSample, kEdit, kInpaint };
    Kind kind = Kind::kSample;
    std::vector<int> shape;  ///< [C,H,W] for kSample (others use source)
    Tensor source;           ///< kEdit / kInpaint source latent
    Tensor mask;             ///< kInpaint regenerate-mask (1 = regenerate)
    float strength = 1.0f;   ///< kEdit; non-finite values retire empty
    Tensor condition_tokens;
    DdimConfig config;
    util::Rng* rng = nullptr;
};

/// Synchronous hand-off between a caller that wants one latent and an
/// engine that may batch many (serve::StepBatcher). execute() blocks
/// until the job retires; an empty tensor means config.should_cancel
/// fired, mirroring the sequential samplers.
class SamplerExecutor {
public:
    virtual ~SamplerExecutor() = default;
    virtual Tensor execute(SamplerJob job) = 0;
};

/// Runs one job to completion on a private batch-of-one scheduler: the
/// sequential path. DdimSampler's entry points and the pipeline's
/// no-executor path both delegate here.
Tensor run_sampler_job(const UNet& unet, const NoiseSchedule& schedule,
                       SamplerJob job);

/// Continuous cross-request DDIM step scheduler. NOT thread-safe: one
/// owner (a serve::StepBatcher driver thread, or a stack-local
/// batch-of-one loop) calls admit()/step()/take_finished() serially.
/// Each job keeps its own timestep cursor, so jobs at different
/// progress — including edits that start mid-subsequence and jobs
/// admitted while others are mid-flight — share one forward via the
/// UNet's per-sample `t` vector. Jobs whose latent shapes differ (the
/// half-resolution overload rung) are partitioned into one forward per
/// shape group within the step.
class BatchedDdimScheduler {
public:
    BatchedDdimScheduler(const UNet& unet, const NoiseSchedule& schedule);

    /// Admits a job at the next step boundary. Prepares the initial
    /// latent exactly as the sequential path would (advancing *job.rng
    /// identically); a kEdit job with non-finite strength retires
    /// immediately with an empty latent instead of corrupting the
    /// start-index cast.
    std::uint64_t admit(SamplerJob job);

    /// Runs ONE batched denoising step across every active job: polls
    /// each job's should_cancel (retiring cancelled ones), performs one
    /// guided-eps forward per latent-shape group, applies the
    /// per-request DDIM update, and advances cursors. Returns the
    /// number of jobs still active afterwards.
    std::size_t step();

    struct Finished {
        std::uint64_t id = 0;
        Tensor latent;  ///< empty when cancelled
        bool cancelled = false;
    };
    /// Drains the retired-job list (finished since the last call).
    std::vector<Finished> take_finished();

    std::size_t active() const { return active_.size(); }

private:
    struct Request {
        std::uint64_t id = 0;
        SamplerJob job;
        std::vector<int> timesteps;
        std::size_t cursor = 0;
        Tensor z;
        /// Cancelled by the mid-step (Heun corrector) poll; retired at
        /// the end of the step so indices stay stable within it.
        bool mid_cancelled = false;
    };

    /// One classifier-free-guided noise prediction per entry of
    /// `requests`, evaluated at (`latents[i]`, `timesteps[i]`) — the
    /// batched equivalent of the sequential guided_eps. CFG requests
    /// contribute a conditional and an unconditional row to the same
    /// forward.
    std::vector<Tensor> batched_guided_eps(
        const std::vector<const Request*>& requests,
        const std::vector<const Tensor*>& latents,
        const std::vector<int>& timesteps) const;

    void retire(std::uint64_t id, Tensor latent, bool cancelled);

    const UNet& unet_;
    const NoiseSchedule& schedule_;
    std::vector<Request> active_;
    std::vector<Finished> finished_;
    std::uint64_t next_id_ = 1;
};

class DdimSampler {
public:
    DdimSampler(const UNet& unet, const NoiseSchedule& schedule,
                const DdimConfig& config = {})
        : unet_(unet), schedule_(schedule), config_(config) {}

    Tensor sample(const std::vector<int>& shape,
                  const Tensor& condition_tokens, util::Rng& rng) const;

    /// SDEdit-style image-to-image: noises `source_latent` to
    /// `strength` * T and denoises under the new condition. strength in
    /// (0, 1]; low strength stays close to the source, 1.0 equals
    /// sample(). Non-finite strengths are rejected (empty tensor) —
    /// NaN would otherwise sail through the clamp into a size_t cast.
    /// Used for viewpoint transitions anchored on a reference.
    Tensor edit(const Tensor& source_latent, const Tensor& condition_tokens,
                float strength, util::Rng& rng) const;

    /// RePaint-style inpainting: regenerates only where `mask` is 1
    /// (same shape as the latent), re-imposing the source elsewhere at
    /// every step.
    Tensor inpaint(const Tensor& source_latent, const Tensor& mask,
                   const Tensor& condition_tokens, util::Rng& rng) const;

    const DdimConfig& config() const { return config_; }

private:
    const UNet& unet_;
    const NoiseSchedule& schedule_;
    DdimConfig config_;
};

}  // namespace aero::diffusion
