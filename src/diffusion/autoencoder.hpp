#pragma once
// Latent autoencoder E/D: compresses 3x S x S images into
// latent_channels x S/4 x S/4 latents (z_0 = E(X_i), Sec. IV-C-1) and
// decodes samples back to RGB. Trained with pixel MSE.

#include "image/image.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"

namespace aero::diffusion {

using autograd::Var;
using tensor::Tensor;

struct AutoencoderConfig {
    int image_size = 32;
    int latent_channels = 4;
    int base_channels = 20;
    int groups = 4;

    int latent_size() const { return image_size / 4; }
};

class LatentAutoencoder : public nn::Module {
public:
    LatentAutoencoder(const AutoencoderConfig& config, util::Rng& rng);

    /// [N,3,S,S] -> [N,latent,S/4,S/4].
    Var encode(const Var& images) const;
    /// [N,latent,S/4,S/4] -> [N,3,S,S] in [-1,1] (tanh).
    Var decode(const Var& latents) const;

    /// Convenience: image -> latent tensor [latent, s, s] (no grad).
    Tensor encode_image(const image::Image& img) const;
    /// Convenience: latent [latent, s, s] -> image.
    image::Image decode_latent(const Tensor& latent) const;

    const AutoencoderConfig& config() const { return config_; }

private:
    AutoencoderConfig config_;
    nn::Conv2d enc1_;
    nn::GroupNorm enc_norm1_;
    nn::Conv2d enc2_;
    nn::GroupNorm enc_norm2_;
    nn::Conv2d enc3_;
    nn::Conv2d dec1_;
    nn::GroupNorm dec_norm1_;
    nn::Conv2d dec2_;
    nn::GroupNorm dec_norm2_;
    nn::Conv2d dec3_;
};

struct AutoencoderTrainConfig {
    int steps = 150;
    int batch_size = 8;
    float lr = 2e-3f;
};

struct AutoencoderTrainStats {
    float first_loss = 0.0f;
    float final_loss = 0.0f;
    float latent_scale = 1.0f;  ///< 1/std of latents after training
};

/// Trains on images (converted to [-1,1] CHW internally) and reports the
/// latent normalisation scale used by the diffusion process.
AutoencoderTrainStats train_autoencoder(LatentAutoencoder& autoencoder,
                                        const std::vector<image::Image>& images,
                                        const AutoencoderTrainConfig& config,
                                        util::Rng& rng);

}  // namespace aero::diffusion
