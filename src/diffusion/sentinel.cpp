#include "diffusion/sentinel.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace aero::diffusion {

namespace {
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/// Process-wide training-health counters; the per-run exact counts stay
/// on the sentinel itself (DiffusionTrainStats reads those).
struct SentinelMetrics {
    obs::Counter* nan_events;
    obs::Counter* spike_events;
    obs::Counter* rollbacks;
};

const SentinelMetrics& sentinel_metrics() {
    static const SentinelMetrics metrics = [] {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
        SentinelMetrics m;
        m.nan_events = &reg.counter("aero_train_nan_events_total",
                                    "non-finite loss/gradient events");
        m.spike_events = &reg.counter("aero_train_spike_events_total",
                                      "loss spike events");
        m.rollbacks = &reg.counter("aero_train_rollbacks_total",
                                   "sentinel snapshot rollbacks applied");
        return m;
    }();
    return metrics;
}

}  // namespace

void inject_param_fault(util::FaultInjector* injector, int step,
                        std::vector<autograd::Var>& params) {
    if (injector && !params.empty() && injector->fires(step, "param")) {
        params.front().mutable_value()[0] = kNan;
    }
}

void inject_grad_fault(util::FaultInjector* injector, int step,
                       std::vector<autograd::Var>& params) {
    if (!injector || !injector->fires(step, "grad")) return;
    for (autograd::Var& p : params) {
        if (!p.grad().empty()) {
            p.node()->grad[0] = kNan;
            return;
        }
    }
}

float inject_loss_fault(util::FaultInjector* injector, int step, float value) {
    if (!injector) return value;
    value *= injector->spike_factor(step);
    if (injector->fires(step, "loss")) value = kNan;
    return value;
}

DivergenceSentinel::DivergenceSentinel(std::vector<autograd::Var> params,
                                       nn::Adam& opt,
                                       const SentinelConfig& config)
    : params_(std::move(params)), opt_(&opt), config_(config) {
    if (config_.enabled) snapshot();
}

void DivergenceSentinel::snapshot() {
    // A corrupted parameter can sit asymptomatic for steps (e.g. the
    // null-condition token only enters CFG-dropped batches), so a
    // finite loss does not prove the weights are clean. Never replace a
    // good snapshot with a non-finite one.
    if (!good_state_.empty()) {
        for (const autograd::Var& p : params_) {
            for (const float v : p.value()) {
                if (!std::isfinite(v)) return;
            }
        }
    }
    good_state_.clear();
    good_state_.reserve(params_.size());
    for (const autograd::Var& p : params_) {
        good_state_.push_back(p.value());
    }
}

DivergenceSentinel::Action DivergenceSentinel::rollback(int step,
                                                        const char* reason) {
    if (rollbacks_ >= config_.max_rollbacks) {
        diverged_ = true;
        util::log_error() << "sentinel: " << reason << " at step " << step
                          << " with rollback budget exhausted ("
                          << rollbacks_ << "); declaring divergence";
        return Action::kAbort;
    }
    for (std::size_t i = 0; i < params_.size(); ++i) {
        params_[i].mutable_value() = good_state_[i];
    }
    ++rollbacks_;
    sentinel_metrics().rollbacks->inc();
    const float new_lr = opt_->config().lr * config_.lr_decay;
    opt_->set_lr(new_lr);
    util::log_warn() << "sentinel: " << reason << " at step " << step
                     << "; rolled back to last good snapshot, lr -> "
                     << new_lr;
    return Action::kRollback;
}

DivergenceSentinel::Action DivergenceSentinel::observe(int step, float loss,
                                                       float grad_norm) {
    if (!config_.enabled) return Action::kProceed;

    if (!std::isfinite(loss) || !std::isfinite(grad_norm)) {
        ++nan_events_;
        sentinel_metrics().nan_events->inc();
        return rollback(step, "non-finite loss/gradient");
    }
    if (healthy_steps_ >= config_.warmup_steps && ema_primed_ &&
        loss > config_.spike_factor * ema_) {
        ++spike_events_;
        sentinel_metrics().spike_events->inc();
        return rollback(step, "loss spike");
    }

    // Healthy step: fold into the tail EMA and refresh the snapshot on
    // the configured cadence.
    if (ema_primed_) {
        ema_ = config_.ema_beta * ema_ + (1.0f - config_.ema_beta) * loss;
    } else {
        ema_ = loss;
        ema_primed_ = true;
    }
    ++healthy_steps_;
    if (config_.snapshot_interval > 0 &&
        healthy_steps_ % config_.snapshot_interval == 0) {
        snapshot();
    }
    return Action::kProceed;
}

}  // namespace aero::diffusion
