#include "mem/arena.hpp"

#include <cstring>
#include <limits>
#include <memory>

#include "util/env.hpp"

namespace aero::mem {

namespace {

constexpr std::size_t kMinBucketFloats = 64;

/// -1 = not yet initialised from AERO_ARENA, 0 = off, 1 = on.
std::atomic<int> g_arena_enabled{-1};

/// Set by ~Arena so Buffers outliving the singleton (static-duration
/// tensors destroyed after it) fall back to direct frees instead of
/// touching a dead arena.
std::atomic<bool> g_arena_destroyed{false};

/// Bucket index whose capacity covers `count`, or -1 when the request
/// exceeds the largest bucket (direct-allocation path).
int bucket_for(std::size_t count) {
    std::size_t cap = kMinBucketFloats;
    for (int b = 0; b < Arena::kNumBuckets; ++b) {
        if (cap >= count) return b;
        cap <<= 1;
    }
    return -1;
}

std::size_t bucket_capacity(int bucket) {
    return kMinBucketFloats << bucket;
}

// The naked-new lint rule holds for mem too: raw storage goes through
// std::allocator, never operator new[].
float* raw_alloc(std::size_t n) {
    return std::allocator<float>().allocate(n);
}

void raw_free(float* ptr, std::size_t n) {
    std::allocator<float>().deallocate(ptr, n);
}

}  // namespace

Arena::Arena()
    : max_resident_bytes_(
          static_cast<long long>(util::env_int("AERO_ARENA_MAX_MB", 256)) *
          1024 * 1024) {}

Arena::~Arena() {
    trim_all();
    g_arena_destroyed.store(true, std::memory_order_relaxed);
}

Arena& Arena::instance() {
    static Arena arena;
    return arena;
}

bool Arena::enabled() {
    int state = g_arena_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = util::env_int("AERO_ARENA", 1) != 0 ? 1 : 0;
        g_arena_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void Arena::set_enabled(bool on) {
    g_arena_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

float* Arena::acquire(std::size_t count, std::size_t* capacity,
                      bool* arena_owned) {
    const int bucket = enabled() ? bucket_for(count) : -1;
    if (bucket < 0) {
        *capacity = count;
        *arena_owned = false;
        return raw_alloc(count);
    }
    const std::size_t cap = bucket_capacity(bucket);
    const long long bytes =
        static_cast<long long>(cap) * static_cast<long long>(sizeof(float));
    requests_.fetch_add(1, std::memory_order_relaxed);

    float* ptr = nullptr;
    {
        const util::MutexLock lock(mutex_);
        std::deque<Block>& list = buckets_[bucket];
        if (!list.empty()) {
            ptr = list.back().ptr;  // LIFO: the warmest block
            list.pop_back();
        }
    }
    if (ptr != nullptr) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        ptr = raw_alloc(cap);
    }
    outstanding_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    *capacity = cap;
    *arena_owned = true;
    return ptr;
}

void Arena::release(float* ptr, std::size_t capacity) {
    const long long bytes = static_cast<long long>(capacity) *
                            static_cast<long long>(sizeof(float));
    outstanding_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    const int bucket = bucket_for(capacity);
    if (bucket < 0 || bucket_capacity(bucket) != capacity || !enabled()) {
        // Gated off (or a capacity the arena never granted): free
        // directly so a disabled arena drains instead of growing.
        raw_free(ptr, capacity);
        return;
    }
    std::deque<Block> freed;
    std::deque<std::size_t> freed_caps;
    {
        const util::MutexLock lock(mutex_);
        buckets_[bucket].push_back(Block{ptr, ++tick_});
        resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        trim_locked(max_resident_bytes_.load(std::memory_order_relaxed),
                    &freed, &freed_caps);
    }
    for (std::size_t i = 0; i < freed.size(); ++i) {
        raw_free(freed[i].ptr, freed_caps[i]);
    }
}

void Arena::trim_locked(long long cap, std::deque<Block>* freed,
                        std::deque<std::size_t>* freed_caps) {
    while (resident_bytes_.load(std::memory_order_relaxed) > cap) {
        // Per-bucket deques are tick-sorted (push_back appends newer,
        // pop_back reuses newest), so each front is that bucket's oldest
        // block; the global LRU victim is the minimum across fronts.
        int oldest = -1;
        std::uint64_t oldest_tick = std::numeric_limits<std::uint64_t>::max();
        for (int b = 0; b < kNumBuckets; ++b) {
            if (!buckets_[b].empty() && buckets_[b].front().tick < oldest_tick) {
                oldest_tick = buckets_[b].front().tick;
                oldest = b;
            }
        }
        if (oldest < 0) break;  // nothing cached
        const std::size_t victim_cap = bucket_capacity(oldest);
        freed->push_back(buckets_[oldest].front());
        freed_caps->push_back(victim_cap);
        buckets_[oldest].pop_front();
        resident_bytes_.fetch_sub(
            static_cast<long long>(victim_cap) *
                static_cast<long long>(sizeof(float)),
            std::memory_order_relaxed);
        trims_.fetch_add(1, std::memory_order_relaxed);
    }
}

ArenaStats Arena::stats() const {
    ArenaStats out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.trims = trims_.load(std::memory_order_relaxed);
    out.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
    out.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
    return out;
}

void Arena::set_max_resident_bytes(long long bytes) {
    max_resident_bytes_.store(bytes, std::memory_order_relaxed);
    std::deque<Block> freed;
    std::deque<std::size_t> freed_caps;
    {
        const util::MutexLock lock(mutex_);
        trim_locked(bytes, &freed, &freed_caps);
    }
    for (std::size_t i = 0; i < freed.size(); ++i) {
        raw_free(freed[i].ptr, freed_caps[i]);
    }
}

long long Arena::max_resident_bytes() const {
    return max_resident_bytes_.load(std::memory_order_relaxed);
}

void Arena::trim_all() {
    std::deque<Block> freed;
    std::deque<std::size_t> freed_caps;
    {
        const util::MutexLock lock(mutex_);
        trim_locked(-1, &freed, &freed_caps);
    }
    for (std::size_t i = 0; i < freed.size(); ++i) {
        raw_free(freed[i].ptr, freed_caps[i]);
    }
}

// ---- Buffer ---------------------------------------------------------

Buffer::Buffer(std::size_t n) : Buffer(Uninit{}, n) {
    if (ptr_ != nullptr) std::memset(ptr_, 0, size_ * sizeof(float));
}

Buffer::Buffer(Uninit, std::size_t n) : size_(n) {
    if (n == 0) return;
    ptr_ = Arena::instance().acquire(n, &capacity_, &arena_owned_);
}

Buffer Buffer::copy_of(const float* src, std::size_t n) {
    Buffer out(Uninit{}, n);
    if (n != 0) std::memcpy(out.ptr_, src, n * sizeof(float));
    return out;
}

Buffer::Buffer(const Buffer& other) : Buffer(Uninit{}, other.size_) {
    if (size_ != 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(float));
}

Buffer& Buffer::operator=(const Buffer& other) {
    if (this == &other) return *this;
    if (size_ == other.size_) {
        // Same element count: refill in place, keep the storage.
        if (size_ != 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(float));
        return *this;
    }
    release_storage();
    size_ = other.size_;
    if (size_ != 0) {
        ptr_ = Arena::instance().acquire(size_, &capacity_, &arena_owned_);
        std::memcpy(ptr_, other.ptr_, size_ * sizeof(float));
    }
    return *this;
}

Buffer::Buffer(Buffer&& other) noexcept
    : ptr_(other.ptr_),
      size_(other.size_),
      capacity_(other.capacity_),
      arena_owned_(other.arena_owned_) {
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.arena_owned_ = false;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
    if (this == &other) return *this;
    release_storage();
    ptr_ = other.ptr_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    arena_owned_ = other.arena_owned_;
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.arena_owned_ = false;
    return *this;
}

Buffer::~Buffer() { release_storage(); }

void Buffer::release_storage() {
    if (ptr_ == nullptr) {
        size_ = 0;
        capacity_ = 0;
        arena_owned_ = false;
        return;
    }
    if (arena_owned_ && !g_arena_destroyed.load(std::memory_order_relaxed)) {
        Arena::instance().release(ptr_, capacity_);
    } else {
        raw_free(ptr_, capacity_);
    }
    ptr_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    arena_owned_ = false;
}

}  // namespace aero::mem
