#include "mem/cache.hpp"

#include "util/env.hpp"

namespace aero::mem {

namespace {

/// -1 = not yet initialised from AERO_COND_CACHE, 0 = off, 1 = on.
std::atomic<int> g_cond_cache_enabled{-1};

}  // namespace

namespace detail {

CacheCounters& cache_counters() {
    static CacheCounters counters;
    return counters;
}

}  // namespace detail

CacheStats cache_stats() {
    const detail::CacheCounters& counters = detail::cache_counters();
    CacheStats out;
    out.hits = counters.hits.load(std::memory_order_relaxed);
    out.misses = counters.misses.load(std::memory_order_relaxed);
    out.insertions = counters.insertions.load(std::memory_order_relaxed);
    out.evictions = counters.evictions.load(std::memory_order_relaxed);
    out.invalidations =
        counters.invalidations.load(std::memory_order_relaxed);
    out.entries = counters.entries.load(std::memory_order_relaxed);
    out.bytes = counters.bytes.load(std::memory_order_relaxed);
    return out;
}

bool cond_cache_enabled() {
    int state = g_cond_cache_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = util::env_int("AERO_COND_CACHE", 1) != 0 ? 1 : 0;
        g_cond_cache_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void set_cond_cache_enabled(bool on) {
    g_cond_cache_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

ConditionCacheConfig ConditionCacheConfig::from_env() {
    ConditionCacheConfig config;
    config.max_entries = util::env_int("AERO_COND_CACHE_CAP", 128);
    if (config.max_entries < 1) config.max_entries = 1;
    config.max_bytes =
        static_cast<long long>(util::env_int("AERO_COND_CACHE_MB", 64)) *
        1024 * 1024;
    if (config.max_bytes < 1) config.max_bytes = 1;
    return config;
}

}  // namespace aero::mem
