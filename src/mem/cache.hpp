#pragma once
// mem::ConditionCache — bounded LRU over encoded condition values
// (DESIGN.md §17). Detector-augmentation and repeated-view workloads
// replay a small set of canonical prompts; the condition stage (CLIP /
// BLIP fusion / ROI features / encoder forward) is identical for
// identical inputs, so the pipeline caches the final encoded condition
// tensor keyed by the canonical prompt key + scene parameters.
//
// Contracts:
//  - Bitwise neutrality. Only deterministic, finite, non-degraded
//    encodings are inserted (the pipeline owns that guard), so a hit
//    returns exactly the tensor a recompute would produce, and
//    AERO_COND_CACHE=0 is a true no-op.
//  - Invalidation. Anything that changes encoder parameters (checkpoint
//    load, training) must call invalidate_all(); the pipeline wires
//    this into load() and fit().
//  - Layering. The cache is a template over the cached value type, so
//    mem never depends on tensor; stats are process-wide relaxed
//    atomics published as aero_cache_* gauges by an obs collector.

#include <atomic>
#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::mem {

/// Cumulative cache activity across every ConditionCache instance;
/// snapshot via cache_stats(). entries/bytes are current values.
struct CacheStats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    long long evictions = 0;
    long long invalidations = 0;  ///< invalidate_all() calls
    long long entries = 0;        ///< live entries across instances
    long long bytes = 0;          ///< live value bytes across instances
};

CacheStats cache_stats();

/// Gate: AERO_COND_CACHE != 0 (default on). Callers consult this BEFORE
/// lookup/insert so the off-path never touches the cache at all.
bool cond_cache_enabled();
void set_cond_cache_enabled(bool on);  ///< test hook

namespace detail {

/// Process-wide counters behind cache_stats(); bumped by every
/// instance so serve replicas sharing one pipeline aggregate naturally.
struct CacheCounters {
    std::atomic<long long> hits{0};
    std::atomic<long long> misses{0};
    std::atomic<long long> insertions{0};
    std::atomic<long long> evictions{0};
    std::atomic<long long> invalidations{0};
    std::atomic<long long> entries{0};
    std::atomic<long long> bytes{0};
};

CacheCounters& cache_counters();

}  // namespace detail

/// Bounds for one ConditionCache instance.
struct ConditionCacheConfig {
    int max_entries = 128;
    long long max_bytes = 64LL * 1024 * 1024;

    /// AERO_COND_CACHE_CAP / AERO_COND_CACHE_MB overrides.
    static ConditionCacheConfig from_env();
};

/// Thread-safe bounded LRU. Values are copied in and out (a hit must
/// not alias mutable cache internals); per-entry byte cost is supplied
/// by the caller at insert so the template stays value-type agnostic.
template <typename Value>
class ConditionCache {
public:
    explicit ConditionCache(
        ConditionCacheConfig config = ConditionCacheConfig::from_env())
        : config_(config) {}

    ~ConditionCache() { invalidate_all(); }

    ConditionCache(const ConditionCache&) = delete;
    ConditionCache& operator=(const ConditionCache&) = delete;

    /// Copies the cached value into *out and refreshes recency.
    /// Counts a hit or a miss.
    bool lookup(const std::string& key, Value* out) AERO_EXCLUDES(mutex_) {
        detail::CacheCounters& counters = detail::cache_counters();
        const util::MutexLock lock(mutex_);
        auto it = index_.find(key);
        if (it == index_.end()) {
            counters.misses.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        entries_.splice(entries_.begin(), entries_, it->second);
        *out = entries_.front().value;
        counters.hits.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /// Inserts (or refreshes) `key`, then evicts from the cold end
    /// until both bounds hold. An entry larger than max_bytes is
    /// accepted and immediately becomes the only eviction candidate.
    void insert(const std::string& key, Value value, long long value_bytes)
        AERO_EXCLUDES(mutex_) {
        detail::CacheCounters& counters = detail::cache_counters();
        const util::MutexLock lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            bytes_ += value_bytes - it->second->bytes;
            counters.bytes.fetch_add(value_bytes - it->second->bytes,
                                     std::memory_order_relaxed);
            it->second->value = std::move(value);
            it->second->bytes = value_bytes;
            entries_.splice(entries_.begin(), entries_, it->second);
            return;
        }
        entries_.push_front(Entry{key, std::move(value), value_bytes});
        index_[key] = entries_.begin();
        bytes_ += value_bytes;
        counters.insertions.fetch_add(1, std::memory_order_relaxed);
        counters.entries.fetch_add(1, std::memory_order_relaxed);
        counters.bytes.fetch_add(value_bytes, std::memory_order_relaxed);
        while (static_cast<int>(entries_.size()) > config_.max_entries ||
               (bytes_ > config_.max_bytes && entries_.size() > 1)) {
            const Entry& victim = entries_.back();
            bytes_ -= victim.bytes;
            counters.bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
            counters.entries.fetch_sub(1, std::memory_order_relaxed);
            counters.evictions.fetch_add(1, std::memory_order_relaxed);
            index_.erase(victim.key);
            entries_.pop_back();
        }
    }

    /// Drops every entry. Called on parameter load / training updates.
    void invalidate_all() AERO_EXCLUDES(mutex_) {
        detail::CacheCounters& counters = detail::cache_counters();
        const util::MutexLock lock(mutex_);
        counters.entries.fetch_sub(static_cast<long long>(entries_.size()),
                                   std::memory_order_relaxed);
        counters.bytes.fetch_sub(bytes_, std::memory_order_relaxed);
        counters.invalidations.fetch_add(1, std::memory_order_relaxed);
        entries_.clear();
        index_.clear();
        bytes_ = 0;
    }

    int entries() const AERO_EXCLUDES(mutex_) {
        const util::MutexLock lock(mutex_);
        return static_cast<int>(entries_.size());
    }

    long long bytes() const AERO_EXCLUDES(mutex_) {
        const util::MutexLock lock(mutex_);
        return bytes_;
    }

private:
    struct Entry {
        std::string key;
        Value value;
        long long bytes = 0;
    };

    const ConditionCacheConfig config_;
    mutable util::Mutex mutex_;
    std::list<Entry> entries_ AERO_GUARDED_BY(mutex_);  ///< front = hottest
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index_ AERO_GUARDED_BY(mutex_);
    long long bytes_ AERO_GUARDED_BY(mutex_) = 0;
};

}  // namespace aero::mem
