#pragma once
// mem::Arena + mem::Buffer — size-bucketed caching allocator for tensor
// storage (DESIGN.md §17). Every DDIM step allocates and frees dozens of
// identically-shaped activation tensors; the arena recycles those blocks
// through power-of-two buckets so steady-state sampling stops hitting
// the system heap (model: CUDAMallocAsyncAllocator's bucketed pools).
//
// Contracts:
//  - Bitwise neutrality. A recycled block is indistinguishable from a
//    fresh one: Buffer zero-fills (or copy-fills) every visible element,
//    so arithmetic never observes allocation provenance. AERO_ARENA=0
//    routes every request straight to the heap — a true no-op.
//  - Bounded residency. Cached-but-idle bytes are capped
//    (AERO_ARENA_MAX_MB, default 256); the cap is enforced by trimming
//    the least-recently-released block across all buckets.
//  - Layering. mem sits below obs (like util::ThreadPool): stats are
//    plain relaxed atomics that obs pulls into aero_alloc_* gauges via a
//    registry collector. mem depends only on util.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::mem {

/// Cumulative allocator activity since process start; snapshot via
/// Arena::stats(). Gauges (resident/outstanding) are current values,
/// counters are monotonic.
struct ArenaStats {
    long long requests = 0;  ///< acquire() calls routed through the arena
    long long hits = 0;      ///< served from a bucket free list
    long long misses = 0;    ///< fell through to the system heap
    long long trims = 0;     ///< cached blocks freed by the LRU trim
    long long resident_bytes = 0;     ///< bytes idle in free lists
    long long outstanding_bytes = 0;  ///< arena bytes currently lent out
};

/// Thread-safe caching allocator for float blocks. Requests round up to
/// power-of-two bucket capacities (64 .. 4M floats); larger requests and
/// all requests while the gate is off bypass the arena entirely. Free
/// lists are LIFO per bucket (cache-warm reuse); the residency cap
/// evicts the globally least-recently-released block first.
class Arena {
public:
    Arena();
    ~Arena();
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// The process-wide arena every Buffer draws from.
    static Arena& instance();

    /// Gate: AERO_ARENA != 0 (default on), read once. set_enabled is the
    /// test hook for toggling at runtime; Buffers remember which path
    /// allocated them, so toggling mid-lifetime is safe.
    static bool enabled();
    static void set_enabled(bool on);

    /// Allocates >= count floats. Writes the granted capacity (the
    /// bucket size, or count exactly on the bypass path) and whether the
    /// block must be returned via release(). Contents are UNSPECIFIED —
    /// recycled blocks carry stale data; Buffer owns initialisation.
    float* acquire(std::size_t count, std::size_t* capacity,
                   bool* arena_owned) AERO_EXCLUDES(mutex_);

    /// Returns an arena-owned block of exactly `capacity` floats (as
    /// granted by acquire). If the gate is off it frees directly instead
    /// of caching, so a disabled arena drains rather than grows.
    void release(float* ptr, std::size_t capacity) AERO_EXCLUDES(mutex_);

    ArenaStats stats() const;

    /// Residency cap in bytes; shrinking trims immediately.
    void set_max_resident_bytes(long long bytes) AERO_EXCLUDES(mutex_);
    long long max_resident_bytes() const;

    /// Frees every cached block (resident_bytes -> 0). Test hook and
    /// destructor path; outstanding blocks are unaffected.
    void trim_all() AERO_EXCLUDES(mutex_);

    static constexpr int kNumBuckets = 17;  // 64 .. 64<<16 = 4M floats

private:
    struct Block {
        float* ptr;
        std::uint64_t tick;  ///< release order; front of deque = oldest
    };

    /// Evicts oldest blocks until resident <= cap. Returns them for the
    /// caller to free outside the lock.
    void trim_locked(long long cap, std::deque<Block>* freed,
                     std::deque<std::size_t>* freed_caps)
        AERO_REQUIRES(mutex_);

    mutable util::Mutex mutex_;
    std::deque<Block> buckets_[kNumBuckets] AERO_GUARDED_BY(mutex_);
    std::uint64_t tick_ AERO_GUARDED_BY(mutex_) = 0;

    std::atomic<long long> max_resident_bytes_;
    std::atomic<long long> requests_{0};
    std::atomic<long long> hits_{0};
    std::atomic<long long> misses_{0};
    std::atomic<long long> trims_{0};
    std::atomic<long long> resident_bytes_{0};
    std::atomic<long long> outstanding_bytes_{0};
};

/// Storage handle for tensor data: a fixed-size float block drawn from
/// the Arena (or the heap when gated off / oversized). Value semantics
/// match std::vector<float> — deep copies, stealing moves — but the
/// visible size is frozen at construction: there is no resize(), so
/// storage can never drift out of sync with a tensor's shape (the
/// Tensor::values() foot-gun this type retires).
class Buffer {
public:
    Buffer() = default;
    /// Zero-filled block of n floats (matches std::vector<float>(n)).
    explicit Buffer(std::size_t n);
    /// Deep copy of [src, src + n).
    static Buffer copy_of(const float* src, std::size_t n);

    Buffer(const Buffer& other);
    Buffer& operator=(const Buffer& other);
    Buffer(Buffer&& other) noexcept;
    Buffer& operator=(Buffer&& other) noexcept;
    ~Buffer();

    float* data() { return ptr_; }
    const float* data() const { return ptr_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    float& operator[](std::size_t i) { return ptr_[i]; }
    float operator[](std::size_t i) const { return ptr_[i]; }

    float* begin() { return ptr_; }
    float* end() { return ptr_ + size_; }
    const float* begin() const { return ptr_; }
    const float* end() const { return ptr_ + size_; }

private:
    struct Uninit {};
    Buffer(Uninit, std::size_t n);  ///< acquire without zero-fill
    void release_storage();

    float* ptr_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
    bool arena_owned_ = false;
};

}  // namespace aero::mem
