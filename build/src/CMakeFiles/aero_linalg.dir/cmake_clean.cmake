file(REMOVE_RECURSE
  "CMakeFiles/aero_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/aero_linalg.dir/linalg/matrix.cpp.o.d"
  "libaero_linalg.a"
  "libaero_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
