# Empty compiler generated dependencies file for aero_linalg.
# This may be replaced when dependencies are built.
