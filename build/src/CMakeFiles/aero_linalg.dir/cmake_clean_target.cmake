file(REMOVE_RECURSE
  "libaero_linalg.a"
)
