# Empty compiler generated dependencies file for aero_embed.
# This may be replaced when dependencies are built.
