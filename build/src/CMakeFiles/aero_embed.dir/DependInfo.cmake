
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/clip.cpp" "src/CMakeFiles/aero_embed.dir/embed/clip.cpp.o" "gcc" "src/CMakeFiles/aero_embed.dir/embed/clip.cpp.o.d"
  "/root/repo/src/embed/encoders.cpp" "src/CMakeFiles/aero_embed.dir/embed/encoders.cpp.o" "gcc" "src/CMakeFiles/aero_embed.dir/embed/encoders.cpp.o.d"
  "/root/repo/src/embed/fusion.cpp" "src/CMakeFiles/aero_embed.dir/embed/fusion.cpp.o" "gcc" "src/CMakeFiles/aero_embed.dir/embed/fusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
