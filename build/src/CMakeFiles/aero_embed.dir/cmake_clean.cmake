file(REMOVE_RECURSE
  "CMakeFiles/aero_embed.dir/embed/clip.cpp.o"
  "CMakeFiles/aero_embed.dir/embed/clip.cpp.o.d"
  "CMakeFiles/aero_embed.dir/embed/encoders.cpp.o"
  "CMakeFiles/aero_embed.dir/embed/encoders.cpp.o.d"
  "CMakeFiles/aero_embed.dir/embed/fusion.cpp.o"
  "CMakeFiles/aero_embed.dir/embed/fusion.cpp.o.d"
  "libaero_embed.a"
  "libaero_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
