file(REMOVE_RECURSE
  "libaero_embed.a"
)
