file(REMOVE_RECURSE
  "CMakeFiles/aero_image.dir/image/image.cpp.o"
  "CMakeFiles/aero_image.dir/image/image.cpp.o.d"
  "CMakeFiles/aero_image.dir/image/transforms.cpp.o"
  "CMakeFiles/aero_image.dir/image/transforms.cpp.o.d"
  "libaero_image.a"
  "libaero_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
