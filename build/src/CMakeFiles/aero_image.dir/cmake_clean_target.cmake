file(REMOVE_RECURSE
  "libaero_image.a"
)
