
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/image.cpp" "src/CMakeFiles/aero_image.dir/image/image.cpp.o" "gcc" "src/CMakeFiles/aero_image.dir/image/image.cpp.o.d"
  "/root/repo/src/image/transforms.cpp" "src/CMakeFiles/aero_image.dir/image/transforms.cpp.o" "gcc" "src/CMakeFiles/aero_image.dir/image/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
