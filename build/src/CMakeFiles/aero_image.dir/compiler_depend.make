# Empty compiler generated dependencies file for aero_image.
# This may be replaced when dependencies are built.
