file(REMOVE_RECURSE
  "CMakeFiles/aero_text.dir/text/caption.cpp.o"
  "CMakeFiles/aero_text.dir/text/caption.cpp.o.d"
  "CMakeFiles/aero_text.dir/text/llm.cpp.o"
  "CMakeFiles/aero_text.dir/text/llm.cpp.o.d"
  "CMakeFiles/aero_text.dir/text/parser.cpp.o"
  "CMakeFiles/aero_text.dir/text/parser.cpp.o.d"
  "CMakeFiles/aero_text.dir/text/vocabulary.cpp.o"
  "CMakeFiles/aero_text.dir/text/vocabulary.cpp.o.d"
  "libaero_text.a"
  "libaero_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
