# Empty dependencies file for aero_text.
# This may be replaced when dependencies are built.
