file(REMOVE_RECURSE
  "libaero_text.a"
)
