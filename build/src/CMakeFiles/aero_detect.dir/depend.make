# Empty dependencies file for aero_detect.
# This may be replaced when dependencies are built.
