file(REMOVE_RECURSE
  "libaero_detect.a"
)
