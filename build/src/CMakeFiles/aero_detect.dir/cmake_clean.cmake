file(REMOVE_RECURSE
  "CMakeFiles/aero_detect.dir/detect/detector.cpp.o"
  "CMakeFiles/aero_detect.dir/detect/detector.cpp.o.d"
  "CMakeFiles/aero_detect.dir/detect/evaluation.cpp.o"
  "CMakeFiles/aero_detect.dir/detect/evaluation.cpp.o.d"
  "libaero_detect.a"
  "libaero_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
