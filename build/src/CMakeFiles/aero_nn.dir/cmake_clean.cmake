file(REMOVE_RECURSE
  "CMakeFiles/aero_nn.dir/nn/attention.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/attention.cpp.o.d"
  "CMakeFiles/aero_nn.dir/nn/ema.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/ema.cpp.o.d"
  "CMakeFiles/aero_nn.dir/nn/layers.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/layers.cpp.o.d"
  "CMakeFiles/aero_nn.dir/nn/module.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/module.cpp.o.d"
  "CMakeFiles/aero_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/aero_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/aero_nn.dir/nn/serialize.cpp.o.d"
  "libaero_nn.a"
  "libaero_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
