# Empty dependencies file for aero_nn.
# This may be replaced when dependencies are built.
