
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/aero_nn.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/ema.cpp" "src/CMakeFiles/aero_nn.dir/nn/ema.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/ema.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/aero_nn.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/aero_nn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/aero_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/aero_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/aero_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
