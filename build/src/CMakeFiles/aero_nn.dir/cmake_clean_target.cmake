file(REMOVE_RECURSE
  "libaero_nn.a"
)
