
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/autoencoder.cpp" "src/CMakeFiles/aero_diffusion.dir/diffusion/autoencoder.cpp.o" "gcc" "src/CMakeFiles/aero_diffusion.dir/diffusion/autoencoder.cpp.o.d"
  "/root/repo/src/diffusion/sampler.cpp" "src/CMakeFiles/aero_diffusion.dir/diffusion/sampler.cpp.o" "gcc" "src/CMakeFiles/aero_diffusion.dir/diffusion/sampler.cpp.o.d"
  "/root/repo/src/diffusion/schedule.cpp" "src/CMakeFiles/aero_diffusion.dir/diffusion/schedule.cpp.o" "gcc" "src/CMakeFiles/aero_diffusion.dir/diffusion/schedule.cpp.o.d"
  "/root/repo/src/diffusion/trainer.cpp" "src/CMakeFiles/aero_diffusion.dir/diffusion/trainer.cpp.o" "gcc" "src/CMakeFiles/aero_diffusion.dir/diffusion/trainer.cpp.o.d"
  "/root/repo/src/diffusion/unet.cpp" "src/CMakeFiles/aero_diffusion.dir/diffusion/unet.cpp.o" "gcc" "src/CMakeFiles/aero_diffusion.dir/diffusion/unet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
