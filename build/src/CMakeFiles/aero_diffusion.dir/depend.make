# Empty dependencies file for aero_diffusion.
# This may be replaced when dependencies are built.
