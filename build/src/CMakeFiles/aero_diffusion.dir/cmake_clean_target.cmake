file(REMOVE_RECURSE
  "libaero_diffusion.a"
)
