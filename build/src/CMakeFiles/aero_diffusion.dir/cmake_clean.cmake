file(REMOVE_RECURSE
  "CMakeFiles/aero_diffusion.dir/diffusion/autoencoder.cpp.o"
  "CMakeFiles/aero_diffusion.dir/diffusion/autoencoder.cpp.o.d"
  "CMakeFiles/aero_diffusion.dir/diffusion/sampler.cpp.o"
  "CMakeFiles/aero_diffusion.dir/diffusion/sampler.cpp.o.d"
  "CMakeFiles/aero_diffusion.dir/diffusion/schedule.cpp.o"
  "CMakeFiles/aero_diffusion.dir/diffusion/schedule.cpp.o.d"
  "CMakeFiles/aero_diffusion.dir/diffusion/trainer.cpp.o"
  "CMakeFiles/aero_diffusion.dir/diffusion/trainer.cpp.o.d"
  "CMakeFiles/aero_diffusion.dir/diffusion/unet.cpp.o"
  "CMakeFiles/aero_diffusion.dir/diffusion/unet.cpp.o.d"
  "libaero_diffusion.a"
  "libaero_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
