# Empty compiler generated dependencies file for aero_scene.
# This may be replaced when dependencies are built.
