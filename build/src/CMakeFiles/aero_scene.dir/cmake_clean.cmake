file(REMOVE_RECURSE
  "CMakeFiles/aero_scene.dir/scene/dataset.cpp.o"
  "CMakeFiles/aero_scene.dir/scene/dataset.cpp.o.d"
  "CMakeFiles/aero_scene.dir/scene/generator.cpp.o"
  "CMakeFiles/aero_scene.dir/scene/generator.cpp.o.d"
  "CMakeFiles/aero_scene.dir/scene/renderer.cpp.o"
  "CMakeFiles/aero_scene.dir/scene/renderer.cpp.o.d"
  "CMakeFiles/aero_scene.dir/scene/types.cpp.o"
  "CMakeFiles/aero_scene.dir/scene/types.cpp.o.d"
  "libaero_scene.a"
  "libaero_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
