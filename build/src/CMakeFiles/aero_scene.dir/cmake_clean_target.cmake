file(REMOVE_RECURSE
  "libaero_scene.a"
)
