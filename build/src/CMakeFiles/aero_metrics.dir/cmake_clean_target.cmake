file(REMOVE_RECURSE
  "libaero_metrics.a"
)
