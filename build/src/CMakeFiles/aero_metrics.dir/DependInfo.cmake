
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/feature_net.cpp" "src/CMakeFiles/aero_metrics.dir/metrics/feature_net.cpp.o" "gcc" "src/CMakeFiles/aero_metrics.dir/metrics/feature_net.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "src/CMakeFiles/aero_metrics.dir/metrics/metrics.cpp.o" "gcc" "src/CMakeFiles/aero_metrics.dir/metrics/metrics.cpp.o.d"
  "/root/repo/src/metrics/prd.cpp" "src/CMakeFiles/aero_metrics.dir/metrics/prd.cpp.o" "gcc" "src/CMakeFiles/aero_metrics.dir/metrics/prd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
