# Empty compiler generated dependencies file for aero_metrics.
# This may be replaced when dependencies are built.
