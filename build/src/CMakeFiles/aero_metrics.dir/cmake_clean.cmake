file(REMOVE_RECURSE
  "CMakeFiles/aero_metrics.dir/metrics/feature_net.cpp.o"
  "CMakeFiles/aero_metrics.dir/metrics/feature_net.cpp.o.d"
  "CMakeFiles/aero_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/aero_metrics.dir/metrics/metrics.cpp.o.d"
  "CMakeFiles/aero_metrics.dir/metrics/prd.cpp.o"
  "CMakeFiles/aero_metrics.dir/metrics/prd.cpp.o.d"
  "libaero_metrics.a"
  "libaero_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
