file(REMOVE_RECURSE
  "CMakeFiles/aero_autograd.dir/autograd/var.cpp.o"
  "CMakeFiles/aero_autograd.dir/autograd/var.cpp.o.d"
  "libaero_autograd.a"
  "libaero_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
