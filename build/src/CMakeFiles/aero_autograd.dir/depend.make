# Empty dependencies file for aero_autograd.
# This may be replaced when dependencies are built.
