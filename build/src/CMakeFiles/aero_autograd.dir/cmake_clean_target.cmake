file(REMOVE_RECURSE
  "libaero_autograd.a"
)
