file(REMOVE_RECURSE
  "CMakeFiles/aero_util.dir/util/env.cpp.o"
  "CMakeFiles/aero_util.dir/util/env.cpp.o.d"
  "CMakeFiles/aero_util.dir/util/json.cpp.o"
  "CMakeFiles/aero_util.dir/util/json.cpp.o.d"
  "CMakeFiles/aero_util.dir/util/log.cpp.o"
  "CMakeFiles/aero_util.dir/util/log.cpp.o.d"
  "CMakeFiles/aero_util.dir/util/rng.cpp.o"
  "CMakeFiles/aero_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/aero_util.dir/util/strings.cpp.o"
  "CMakeFiles/aero_util.dir/util/strings.cpp.o.d"
  "libaero_util.a"
  "libaero_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
