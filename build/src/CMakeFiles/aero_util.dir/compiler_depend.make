# Empty compiler generated dependencies file for aero_util.
# This may be replaced when dependencies are built.
