file(REMOVE_RECURSE
  "libaero_util.a"
)
