file(REMOVE_RECURSE
  "CMakeFiles/aero_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/aero_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/aero_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/aero_tensor.dir/tensor/tensor.cpp.o.d"
  "libaero_tensor.a"
  "libaero_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
