# Empty compiler generated dependencies file for aero_tensor.
# This may be replaced when dependencies are built.
