file(REMOVE_RECURSE
  "libaero_tensor.a"
)
