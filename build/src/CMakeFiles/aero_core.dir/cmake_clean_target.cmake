file(REMOVE_RECURSE
  "libaero_core.a"
)
