file(REMOVE_RECURSE
  "CMakeFiles/aero_core.dir/core/condition.cpp.o"
  "CMakeFiles/aero_core.dir/core/condition.cpp.o.d"
  "CMakeFiles/aero_core.dir/core/config.cpp.o"
  "CMakeFiles/aero_core.dir/core/config.cpp.o.d"
  "CMakeFiles/aero_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/aero_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/aero_core.dir/core/substrate.cpp.o"
  "CMakeFiles/aero_core.dir/core/substrate.cpp.o.d"
  "libaero_core.a"
  "libaero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
