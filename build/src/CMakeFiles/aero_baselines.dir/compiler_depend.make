# Empty compiler generated dependencies file for aero_baselines.
# This may be replaced when dependencies are built.
