file(REMOVE_RECURSE
  "CMakeFiles/aero_baselines.dir/baselines/models.cpp.o"
  "CMakeFiles/aero_baselines.dir/baselines/models.cpp.o.d"
  "libaero_baselines.a"
  "libaero_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
