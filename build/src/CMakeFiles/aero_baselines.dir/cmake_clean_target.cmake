file(REMOVE_RECURSE
  "libaero_baselines.a"
)
