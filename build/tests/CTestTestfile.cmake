# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_linalg "/root/repo/build/tests/test_linalg")
set_tests_properties(test_linalg PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_autograd "/root/repo/build/tests/test_autograd")
set_tests_properties(test_autograd PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_image "/root/repo/build/tests/test_image")
set_tests_properties(test_image PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_scene "/root/repo/build/tests/test_scene")
set_tests_properties(test_scene PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_text "/root/repo/build/tests/test_text")
set_tests_properties(test_text PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_detect "/root/repo/build/tests/test_detect")
set_tests_properties(test_detect PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_embed "/root/repo/build/tests/test_embed")
set_tests_properties(test_embed PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_diffusion "/root/repo/build/tests/test_diffusion")
set_tests_properties(test_diffusion PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_metrics "/root/repo/build/tests/test_metrics")
set_tests_properties(test_metrics PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;aero_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  ENVIRONMENT "AERO_BENCH_SCALE=0" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;aero_test;/root/repo/tests/CMakeLists.txt;0;")
