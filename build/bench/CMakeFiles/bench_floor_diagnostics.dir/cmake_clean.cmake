file(REMOVE_RECURSE
  "CMakeFiles/bench_floor_diagnostics.dir/bench_floor_diagnostics.cpp.o"
  "CMakeFiles/bench_floor_diagnostics.dir/bench_floor_diagnostics.cpp.o.d"
  "bench_floor_diagnostics"
  "bench_floor_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floor_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
