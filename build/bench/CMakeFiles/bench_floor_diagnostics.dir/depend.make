# Empty dependencies file for bench_floor_diagnostics.
# This may be replaced when dependencies are built.
