file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nighttime.dir/bench_fig5_nighttime.cpp.o"
  "CMakeFiles/bench_fig5_nighttime.dir/bench_fig5_nighttime.cpp.o.d"
  "bench_fig5_nighttime"
  "bench_fig5_nighttime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nighttime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
