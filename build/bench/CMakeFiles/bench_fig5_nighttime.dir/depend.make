# Empty dependencies file for bench_fig5_nighttime.
# This may be replaced when dependencies are built.
