
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_nighttime.cpp" "bench/CMakeFiles/bench_fig5_nighttime.dir/bench_fig5_nighttime.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_nighttime.dir/bench_fig5_nighttime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aero_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
