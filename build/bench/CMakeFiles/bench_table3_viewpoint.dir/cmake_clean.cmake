file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_viewpoint.dir/bench_table3_viewpoint.cpp.o"
  "CMakeFiles/bench_table3_viewpoint.dir/bench_table3_viewpoint.cpp.o.d"
  "bench_table3_viewpoint"
  "bench_table3_viewpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_viewpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
