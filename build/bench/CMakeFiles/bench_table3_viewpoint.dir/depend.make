# Empty dependencies file for bench_table3_viewpoint.
# This may be replaced when dependencies are built.
