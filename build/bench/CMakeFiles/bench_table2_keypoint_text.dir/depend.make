# Empty dependencies file for bench_table2_keypoint_text.
# This may be replaced when dependencies are built.
