file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_keypoint_text.dir/bench_table2_keypoint_text.cpp.o"
  "CMakeFiles/bench_table2_keypoint_text.dir/bench_table2_keypoint_text.cpp.o.d"
  "bench_table2_keypoint_text"
  "bench_table2_keypoint_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_keypoint_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
