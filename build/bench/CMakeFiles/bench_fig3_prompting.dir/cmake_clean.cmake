file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_prompting.dir/bench_fig3_prompting.cpp.o"
  "CMakeFiles/bench_fig3_prompting.dir/bench_fig3_prompting.cpp.o.d"
  "bench_fig3_prompting"
  "bench_fig3_prompting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prompting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
