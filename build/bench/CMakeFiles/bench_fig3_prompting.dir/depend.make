# Empty dependencies file for bench_fig3_prompting.
# This may be replaced when dependencies are built.
