# Empty compiler generated dependencies file for bench_fig4_daytime_samples.
# This may be replaced when dependencies are built.
