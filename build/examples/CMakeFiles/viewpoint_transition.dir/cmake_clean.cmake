file(REMOVE_RECURSE
  "CMakeFiles/viewpoint_transition.dir/viewpoint_transition.cpp.o"
  "CMakeFiles/viewpoint_transition.dir/viewpoint_transition.cpp.o.d"
  "viewpoint_transition"
  "viewpoint_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewpoint_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
