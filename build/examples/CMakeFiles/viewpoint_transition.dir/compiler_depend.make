# Empty compiler generated dependencies file for viewpoint_transition.
# This may be replaced when dependencies are built.
