file(REMOVE_RECURSE
  "CMakeFiles/region_inpainting.dir/region_inpainting.cpp.o"
  "CMakeFiles/region_inpainting.dir/region_inpainting.cpp.o.d"
  "region_inpainting"
  "region_inpainting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_inpainting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
