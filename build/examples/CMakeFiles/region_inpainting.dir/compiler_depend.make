# Empty compiler generated dependencies file for region_inpainting.
# This may be replaced when dependencies are built.
