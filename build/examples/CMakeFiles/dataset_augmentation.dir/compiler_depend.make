# Empty compiler generated dependencies file for dataset_augmentation.
# This may be replaced when dependencies are built.
