file(REMOVE_RECURSE
  "CMakeFiles/dataset_augmentation.dir/dataset_augmentation.cpp.o"
  "CMakeFiles/dataset_augmentation.dir/dataset_augmentation.cpp.o.d"
  "dataset_augmentation"
  "dataset_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
