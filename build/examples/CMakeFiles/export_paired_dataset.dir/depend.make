# Empty dependencies file for export_paired_dataset.
# This may be replaced when dependencies are built.
