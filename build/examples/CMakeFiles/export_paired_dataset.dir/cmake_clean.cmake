file(REMOVE_RECURSE
  "CMakeFiles/export_paired_dataset.dir/export_paired_dataset.cpp.o"
  "CMakeFiles/export_paired_dataset.dir/export_paired_dataset.cpp.o.d"
  "export_paired_dataset"
  "export_paired_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_paired_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
