file(REMOVE_RECURSE
  "CMakeFiles/nighttime_synthesis.dir/nighttime_synthesis.cpp.o"
  "CMakeFiles/nighttime_synthesis.dir/nighttime_synthesis.cpp.o.d"
  "nighttime_synthesis"
  "nighttime_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nighttime_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
