# Empty compiler generated dependencies file for nighttime_synthesis.
# This may be replaced when dependencies are built.
